"""Group-commit WAL: force_through edge cases and the saves ledger.

With ``group_commit`` on, a prefix force that must touch the device
widens to the whole buffer; later force requests for the records that
rode along are satisfied without a device write and counted in
``log_force_saves``.  These tests pin the edge cases — empty buffer,
lsi below the buffer start, mid-buffer cuts, repeated forces of one
prefix — for both settings, plus the transient-fault retry path and
end-to-end recovery on the E8a workload.
"""

from __future__ import annotations

import random

import pytest

from repro.common.identifiers import NULL_SI
from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.kernel.verify import verify_recovered
from repro.storage.faults import FaultKind, FaultModel, FaultSpec
from repro.wal.faulty_log import FaultyLog
from repro.wal.log_manager import LogManager
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from tests.conftest import physical


def _filled(group_commit: bool, count: int = 5):
    """A log manager with ``count`` buffered operation records."""
    log = LogManager(group_commit=group_commit)
    lsis = [
        log.append_operation(physical(f"x{i}", b"v", name=f"op{i}"))
        for i in range(count)
    ]
    return log, lsis


@pytest.mark.parametrize("group_commit", [False, True])
class TestForceThroughEdges:
    def test_empty_buffer_is_a_noop(self, group_commit):
        log = LogManager(group_commit=group_commit)
        log.force_through(7)
        assert log.stats.log_forces == 0
        assert log.stats.log_force_saves == 0
        assert log.stable_end_lsi() == NULL_SI

    def test_lsi_below_buffer_start(self, group_commit):
        log, lsis = _filled(group_commit)
        log.force_through(lsis[1])
        forces = log.stats.log_forces
        # Everything through lsis[1] is stable; re-requesting any part
        # of that prefix must not force again.
        log.force_through(lsis[0])
        log.force_through(lsis[1])
        assert log.stats.log_forces == forces
        assert log.is_stable(lsis[1])

    def test_below_start_never_counts_a_save(self, group_commit):
        log, lsis = _filled(group_commit)
        log.force_through(lsis[2])
        saves = log.stats.log_force_saves
        # lsis[0] was *explicitly requested* before (it is part of the
        # requested prefix), so satisfying it again saves nothing.
        log.force_through(lsis[0])
        assert log.stats.log_force_saves == saves

    def test_mid_buffer_cut(self, group_commit):
        log, lsis = _filled(group_commit)
        log.force_through(lsis[2])
        assert log.stats.log_forces == 1
        assert log.is_stable(lsis[2])
        if group_commit:
            # The whole buffer rode along on the one force.
            assert log.buffered_lsis() == []
            assert log.stable_end_lsi() == lsis[-1]
        else:
            # Exact prefix semantics: the tail stays volatile.
            assert log.buffered_lsis() == lsis[3:]
            assert log.stable_end_lsi() == lsis[2]

    def test_repeated_forces_of_same_prefix(self, group_commit):
        log, lsis = _filled(group_commit)
        for _ in range(3):
            log.force_through(lsis[2])
        assert log.stats.log_forces == 1

    def test_stable_buffer_invariant(self, group_commit):
        log, lsis = _filled(group_commit)
        log.force_through(lsis[3])
        stable = [r.lsi for r in log.stable_records()]
        # Stable + buffer is always the full lsi sequence, in order.
        assert stable + log.buffered_lsis() == lsis
        assert stable == sorted(stable)


class TestGroupCommitSaves:
    def test_ride_along_counts_one_save_once(self):
        log, lsis = _filled(True)
        log.force_through(lsis[1])
        assert log.stats.log_forces == 1
        assert log.stats.log_force_saves == 0
        # lsis[4] became stable by riding along; its first request is
        # the saved force — and only the first.
        log.force_through(lsis[4])
        assert log.stats.log_forces == 1
        assert log.stats.log_force_saves == 1
        log.force_through(lsis[4])
        assert log.stats.log_forces == 1
        assert log.stats.log_force_saves == 1

    def test_intermediate_request_then_higher(self):
        log, lsis = _filled(True)
        log.force_through(lsis[0])
        log.force_through(lsis[2])  # saved: rode along
        log.force_through(lsis[4])  # saved: rode along
        assert log.stats.log_forces == 1
        assert log.stats.log_force_saves == 2

    def test_off_never_saves(self):
        log, lsis = _filled(False)
        log.force_through(lsis[1])
        log.force_through(lsis[4])
        assert log.stats.log_forces == 2
        assert log.stats.log_force_saves == 0

    def test_full_force_is_not_a_save(self):
        log, lsis = _filled(True)
        log.force()
        log.force_through(lsis[4])
        assert log.stats.log_forces == 1
        assert log.stats.log_force_saves == 0

    def test_crashed_records_never_count(self):
        log, lsis = _filled(True)
        log.force_through(lsis[0])
        more = log.append_operation(physical("y", b"v", name="late"))
        log.crash()
        # ``more`` died in the buffer; requesting it is neither a
        # force (nothing to write) nor a save (it is not stable).
        log.force_through(more)
        assert not log.is_stable(more)
        assert log.stats.log_force_saves == 0
        assert log.stats.log_forces == 1

    def test_config_knob_threads_to_log(self):
        assert RecoverableSystem(SystemConfig()).log.group_commit is False
        system = RecoverableSystem(SystemConfig(group_commit=True))
        assert system.log.group_commit is True


class TestFaultyGroupCommit:
    def test_transient_retry_single_force(self):
        model = FaultModel([FaultSpec(0, FaultKind.TRANSIENT, times=2)])
        log = FaultyLog(model)
        log.group_commit = True
        lsis = [
            log.append_operation(physical(f"x{i}", b"v", name=f"op{i}"))
            for i in range(4)
        ]
        log.force_through(lsis[1])
        # The widened force retried through the transient fault and
        # still counts as one force; the ride-along still saves.
        assert log.stats.fault_retries == 2
        assert log.stats.log_forces == 1
        assert log.buffered_lsis() == []
        log.force_through(lsis[3])
        assert log.stats.log_forces == 1
        assert log.stats.log_force_saves == 1


@pytest.mark.parametrize("group_commit", [False, True])
class TestShutdownRacesGroupCommit:
    """SIGTERM-equivalent shutdown racing the group-commit buffer.

    Graceful daemon shutdown ends with a full ``log.force()`` so that
    records still riding in the group-commit buffer reach the device
    before the process exits.  These tests pin both halves of that
    contract: the final force drains the buffer on the clean path, and
    when the force itself tears (the device dies mid-drain), recovery
    still honors every *acked* write — the torn tail only ever costs
    unacknowledged ride-alongs.
    """

    def _served(self, group_commit, log=None):
        from repro.serve import DaemonClient, DaemonConfig, RetryPolicy, ServeDaemon

        system = RecoverableSystem(
            SystemConfig(group_commit=group_commit), log=log
        )
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=None)
        ).start()
        client = DaemonClient(
            "127.0.0.1", daemon.port, policy=RetryPolicy(attempts=1)
        )
        return system, daemon, client

    def test_graceful_stop_drains_ride_alongs(self, group_commit):
        system, daemon, client = self._served(group_commit)
        acked = [(f"o{i}", client.put(f"o{i}", b"acked")) for i in range(3)]
        # Buffered, never-forced records at shutdown time: appended via
        # the kernel directly while the daemon's queue is idle, the way
        # a crashed-out request or background writer would leave them.
        late_op = physical("late", b"tail", name="late")
        system.execute(late_op)
        late = late_op.lsi
        assert late in system.log.buffered_lsis()
        assert daemon.stop(graceful=True) == 0
        # The shutdown force drained everything, acked or not.
        assert system.log.buffered_lsis() == []
        for _obj, lsi in acked:
            assert system.log.is_stable(lsi)
        assert system.log.is_stable(late)

    def test_torn_shutdown_force_loses_no_acked_write(self, group_commit):
        model = FaultModel(
            [FaultSpec(0, FaultKind.TORN)], armed=False
        )
        log = FaultyLog(model)
        system, daemon, client = self._served(group_commit, log=log)
        acked = [
            (f"o{i}", b"acked", client.put(f"o{i}", b"acked"))
            for i in range(3)
        ]
        client.close()
        system.execute(physical("late", b"tail", name="late"))
        # Arm the model now: the next device write is the shutdown
        # force, and it tears.
        model.armed = True
        assert daemon.stop(graceful=True) == 1
        # The torn tail is a recoverable condition, not a loss: after
        # crash + recovery every acked write is visible at (or past)
        # its acked lSI.
        system.crash()
        system.recover()
        for obj, value, lsi in acked:
            assert system.read(obj) == value
            assert system.cache.vsi_of(obj) >= lsi
        # The unacked ride-along died in the torn suffix — permitted,
        # because no client was ever told it was durable.
        assert system.read("late") is None


class TestGroupCommitTimer:
    """Timer-driven group commit: ticks, empty-buffer no-ops, shutdown.

    The timer thread forces whatever sits in the volatile buffer every
    interval, coalescing forces *across* install batches.  The races
    worth pinning: a tick that finds the buffer empty must be a free
    no-op (not a device force), and shutdown must leave no window in
    which a late tick can still touch the device.
    """

    INTERVAL = 0.005

    def _wait(self, predicate, timeout: float = 2.0) -> bool:
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.001)
        return predicate()

    def test_timer_forces_buffered_records(self):
        log = LogManager(group_commit=True)
        try:
            log.start_group_commit_timer(self.INTERVAL)
            lsi = log.append_operation(physical("x", b"v", name="op"))
            assert self._wait(lambda: log.is_stable(lsi))
            assert log.timer_forces >= 1
            assert log.stats.extra.get("log_timer_forces") == log.timer_forces
            assert log.buffered_lsis() == []
        finally:
            log.stop_group_commit_timer()

    def test_empty_buffer_tick_is_a_noop(self):
        import time

        log = LogManager(group_commit=True)
        try:
            log.start_group_commit_timer(self.INTERVAL)
            # Many ticks pass with nothing buffered; none may count as
            # a force (device touch) or a timer force.
            time.sleep(self.INTERVAL * 20)
            assert log.timer_forces == 0
            assert log.stats.log_forces == 0
            assert log.stats.extra.get("log_timer_forces", 0) == 0
        finally:
            log.stop_group_commit_timer()

    def test_shutdown_cancels_timer(self):
        log = LogManager(group_commit=True)
        log.start_group_commit_timer(self.INTERVAL)
        log.stop_group_commit_timer()
        # The stop joined the thread: a record appended after shutdown
        # can never be timer-forced, no matter how long we wait.
        lsi = log.append_operation(physical("x", b"v", name="late"))
        assert not self._wait(
            lambda: log.is_stable(lsi), timeout=self.INTERVAL * 20
        )
        assert log.timer_forces == 0
        # Idempotent: stopping again (and with no timer at all) is safe.
        log.stop_group_commit_timer()
        LogManager().stop_group_commit_timer()

    def test_shutdown_races_buffered_records(self):
        # Stop while records sit buffered: whatever the last tick did,
        # after the join the buffer state is frozen — no late force.
        log = LogManager(group_commit=True)
        log.start_group_commit_timer(self.INTERVAL)
        log.append_operation(physical("x", b"v", name="op"))
        log.stop_group_commit_timer()
        forces = log.stats.log_forces
        import time

        time.sleep(self.INTERVAL * 10)
        assert log.stats.log_forces == forces

    def test_restart_is_idempotent(self):
        log = LogManager(group_commit=True)
        try:
            log.start_group_commit_timer(1000.0)  # would never tick
            log.start_group_commit_timer(self.INTERVAL)  # restart, fast
            lsi = log.append_operation(physical("x", b"v", name="op"))
            assert self._wait(lambda: log.is_stable(lsi))
        finally:
            log.stop_group_commit_timer()

    def test_rejects_non_positive_interval(self):
        log = LogManager()
        with pytest.raises(ValueError):
            log.start_group_commit_timer(0.0)
        with pytest.raises(ValueError):
            log.start_group_commit_timer(-1.0)

    def test_timer_force_error_is_swallowed_and_counted(self):
        class Exploding(LogManager):
            def _write_stable(self, pending):
                raise RuntimeError("device on fire")

        log = Exploding(group_commit=True)
        try:
            log.start_group_commit_timer(self.INTERVAL)
            log.append_operation(physical("x", b"v", name="op"))
            assert self._wait(lambda: log.timer_force_errors >= 1)
            assert log.stats.extra.get("log_timer_force_errors", 0) >= 1
            # The failed tick neither crashed the thread nor counted a
            # success; the record is still buffered for the caller's
            # piggyback force to surface the error synchronously.
            assert log.timer_forces == 0
            assert log.buffered_lsis() != []
        finally:
            log.stop_group_commit_timer()

    def test_config_interval_wires_timer_and_close_stops_it(self):
        system = RecoverableSystem(
            SystemConfig(group_commit_interval_ms=self.INTERVAL * 1000)
        )
        try:
            # The interval implies widened (group-commit) accounting.
            assert system.log.group_commit is True
            assert system.log._timer_thread is not None
            op = physical("x", b"v", name="op")
            system.execute(op)
            assert self._wait(lambda: system.log.is_stable(op.lsi))
        finally:
            system.close()
        assert system.log._timer_thread is None
        # close() is idempotent and leaves the system usable: forces
        # fall back to the piggyback path.
        system.close()
        late = physical("y", b"v", name="late")
        system.execute(late)
        system.log.force_through(late.lsi)
        assert system.log.is_stable(late.lsi)

    def test_default_config_starts_no_timer(self):
        system = RecoverableSystem(SystemConfig(group_commit=True))
        assert system.log._timer_thread is None
        system.close()


def _e8a_system(group_commit: bool, seed: int) -> RecoverableSystem:
    rng = random.Random(seed)
    system = RecoverableSystem(SystemConfig(group_commit=group_commit))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=6, operations=60, object_size=64,
            w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3,
        ),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.3:
            system.purge()
    system.flush_all()
    return system


@pytest.mark.parametrize("group_commit", [False, True])
def test_e8a_recovers_both_settings(group_commit):
    system = _e8a_system(group_commit, seed=2)
    system.crash()
    system.recover()
    verify_recovered(system)


def test_group_commit_reduces_forces_on_e8a():
    off = _e8a_system(False, seed=0).stats
    on = _e8a_system(True, seed=0).stats
    assert on.log_forces < off.log_forces
    assert on.log_force_saves > 0
    assert on.log_forces + on.log_force_saves == off.log_forces
