"""Tests for crash injection (repro.kernel.crash), including the torn
multi-object flush demonstration that motivates atomic mechanisms."""

import pytest

from repro import (
    CacheConfig,
    CrashInjector,
    MultiObjectStrategy,
    Operation,
    OpKind,
    RawMultiWrite,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.kernel.crash import CrashNow
from tests.conftest import physical


def _pair_op(registry):
    if not registry.registered("pair"):
        registry.register("pair", lambda reads: {"x": b"X", "y": b"Y"})
    return Operation(
        "pair", OpKind.LOGICAL, reads=set(), writes={"x", "y"}, fn="pair"
    )


class TestRunUntilCrash:
    def test_crash_after_op_index(self, system):
        injector = CrashInjector(system)
        ops = [physical(f"o{i}", b"v") for i in range(5)]
        executed = injector.run_until_crash(ops, crash_after_op=2)
        assert executed == 3

    def test_no_crash_point_runs_all(self, system):
        injector = CrashInjector(system)
        ops = [physical(f"o{i}", b"v") for i in range(4)]
        assert injector.run_until_crash(ops) == 4

    def test_purge_every(self, system):
        injector = CrashInjector(system)
        ops = [physical(f"o{i}", b"v") for i in range(6)]
        injector.run_until_crash(ops, purge_every=2)
        assert system.stats.flushes >= 2

    def test_on_step_callback(self, system):
        injector = CrashInjector(system)
        steps = []
        injector.run_until_crash(
            [physical("a", b"1"), physical("b", b"2")],
            on_step=lambda i, op: steps.append(i),
        )
        assert steps == [0, 1]


class TestTornFlush:
    def test_raw_multiwrite_torn_by_crash_is_detected(self):
        """A raw (non-atomic) multi-object flush torn mid-way leaves an
        unexplainable stable state; the recovered system disagrees with
        the oracle.  This is the failure the paper's machinery exists
        to prevent."""
        config = SystemConfig(
            cache=CacheConfig(
                multi_object_strategy=MultiObjectStrategy.ATOMIC,
                mechanism=RawMultiWrite(),
            )
        )
        system = RecoverableSystem(config)
        # A cyclic pair: a reads x writes y; b reads y writes x; c makes
        # it collapse.  vars = {x, y} must flush atomically.
        system.registry.register(
            "f", lambda reads, s, d: {d: (reads[s] or b"") + b"!"}
        )
        system.execute(physical("x", b"x0"))
        system.execute(physical("y", b"y0"))
        system.execute(
            Operation(
                "a",
                OpKind.LOGICAL,
                reads={"x", "y"},
                writes={"y"},
                fn="f",
                params=("x", "y"),
            )
        )
        system.execute(
            Operation(
                "b",
                OpKind.LOGICAL,
                reads={"y"},
                writes={"x"},
                fn="f",
                params=("y", "x"),
            )
        )
        system.execute(
            Operation(
                "c",
                OpKind.LOGICAL,
                reads={"y"},
                writes={"y"},
                fn="f",
                params=("y", "y"),
            )
        )
        system.log.force()
        injector = CrashInjector(system)
        injector.arm_mid_flush_crash(after_writes=1)
        torn = False
        try:
            system.flush_all()
        except CrashNow:
            torn = True
        injector.disarm()
        if not torn:
            pytest.skip("workload did not produce a multi-object flush")
        system.crash()
        system.recover()
        # The torn flush broke recoverability for this state: either
        # verification fails, or (if the torn prefix happened to be
        # harmless) it passes — with RawMultiWrite there is no
        # guarantee.  Assert that the safe configurations never get
        # here (covered by test_atomic_mechanisms_never_tear).
        try:
            verify_recovered(system)
            recovered_ok = True
        except AssertionError:
            recovered_ok = False
        assert not recovered_ok, (
            "expected the torn non-atomic flush to break recovery"
        )

    def test_atomic_mechanisms_never_tear(self, any_cache_system):
        """With a real atomicity story (shadow, flush-txn, or identity
        writes) the same crash point cannot break recoverability."""
        system = any_cache_system
        system.registry.register(
            "f", lambda reads, s, d: {d: (reads[s] or b"") + b"!"}
        )
        system.execute(physical("x", b"x0"))
        system.execute(physical("y", b"y0"))
        system.execute(
            Operation(
                "a",
                OpKind.LOGICAL,
                reads={"x", "y"},
                writes={"y"},
                fn="f",
                params=("x", "y"),
            )
        )
        system.execute(
            Operation(
                "b",
                OpKind.LOGICAL,
                reads={"y"},
                writes={"x"},
                fn="f",
                params=("y", "x"),
            )
        )
        system.execute(
            Operation(
                "c",
                OpKind.LOGICAL,
                reads={"y"},
                writes={"y"},
                fn="f",
                params=("y", "y"),
            )
        )
        system.log.force()
        injector = CrashInjector(system)
        injector.arm_mid_flush_crash(after_writes=1)
        try:
            system.flush_all()
        except CrashNow:
            pass
        injector.disarm()
        system.crash()
        system.recover()
        verify_recovered(system)
