"""Torture v2: faults during recovery itself (repro.kernel.torture).

Small bounded campaigns — the heavyweight sweeps run via
``python -m repro torture v2`` and the CI smoke job; these tests pin
the harness mechanics: recovery-point discovery, the sweep grid
(including nested-crash schedules), and two-phase fuzzing.
"""

from __future__ import annotations

from repro.kernel.torture import (
    RECOVERY_SWEEP_KINDS,
    TortureConfig,
    TortureHarness,
)
from repro.storage.faults import FaultKind, FuzzRates

SMALL = TortureConfig(objects=4, operations=12, supervisor_attempts=24)


def test_recovery_sweep_kinds_cover_the_v2_taxonomy():
    assert set(RECOVERY_SWEEP_KINDS) == {
        FaultKind.CRASH,
        FaultKind.TORN,
        FaultKind.TRANSIENT,
        FaultKind.CORRUPT,
    }


def test_recovery_has_faultable_points():
    """Recovery performs its own numbered device I/O: log scans, redo
    reads, re-apply writes.  If this ever hits zero the v2 sweep is
    vacuously green — fail loudly instead."""
    assert TortureHarness(SMALL).recovery_points() >= 3


def test_sweep_recovery_survives_every_point_and_kind():
    harness = TortureHarness(SMALL)
    report = harness.sweep_recovery()
    assert report.ok, report.summary() + "".join(
        f"\n  {o.description}: {o.error}" for o in report.failures()
    )
    # point x kind grid plus the nested-crash schedules.
    points = report.points
    assert len(report.outcomes) == points * len(RECOVERY_SWEEP_KINDS) + min(
        points, 3
    )
    assert report.totals["recovery_restarts"] > 0


def test_sweep_recovery_includes_nested_crash_schedules():
    """Schedules that crash ≥2 successive recovery attempts in one run
    must be present and converge (the restartability acceptance)."""
    harness = TortureHarness(SMALL)
    report = harness.sweep_recovery()
    nested = [
        o for o in report.outcomes if o.description.startswith("nested:")
    ]
    assert nested, "sweep must include nested-crash schedules"
    for outcome in nested:
        assert outcome.description.count("crash@r") >= 2
        assert outcome.ok, outcome.error
        # Each crash costs one restart; converging takes one more.
        assert outcome.attempts >= 3


def test_fuzz_recovery_two_phase_schedules_converge():
    harness = TortureHarness(SMALL)
    report = harness.fuzz_recovery(
        runs=15,
        seed=0,
        rates=FuzzRates(torn=0.01, corrupt=0.01, crash=0.02),
    )
    assert report.ok, report.summary() + "".join(
        f"\n  {o.description}: {o.error}" for o in report.failures()
    )
    assert len(report.outcomes) == 15
    # Seeds recorded for reproduction.
    assert [o.seed for o in report.outcomes] == list(range(15))
    assert report.totals["recovery_attempts"] >= 15


def test_fuzz_recovery_is_reproducible_from_its_seed():
    harness = TortureHarness(SMALL)
    first = harness.fuzz_recovery(runs=1, seed=5)
    again = harness.fuzz_recovery(runs=1, seed=5)
    assert first.outcomes[0].trace == again.outcomes[0].trace
    assert first.outcomes[0].attempts == again.outcomes[0].attempts
