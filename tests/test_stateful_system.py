"""Hypothesis stateful model of the whole recoverable system.

A rule-based state machine drives a RecoverableSystem with an arbitrary
interleaving of operations, log forces, partial forces, purges,
checkpoints (with and without truncation), evictions, crashes and
recoveries — while a shadow model tracks the durable truth.  After
every recovery the system must agree with the model; structural
invariants (write-graph acyclicity, dirty-table/cache agreement) are
checked continuously.

This is the widest net in the suite: hypothesis shrinks any failing
interleaving to a minimal reproduction.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import (
    Operation,
    OpKind,
    RecoverableSystem,
    verify_recovered,
)
from repro.core.operation import TOMBSTONE, delete_object
from repro.workloads import register_workload_functions

OBJECTS = ["a", "b", "c", "d"]


class RecoverableSystemMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.system = RecoverableSystem()
        register_workload_functions(self.system.registry)
        self.counter = 0
        self.crashed = False

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _execute(self, op):
        self.system.execute(op)

    @precondition(lambda self: not self.crashed)
    @rule(obj=st.sampled_from(OBJECTS))
    def physical_write(self, obj):
        self.counter += 1
        self._execute(
            Operation(
                f"wp({obj})#{self.counter}",
                OpKind.PHYSICAL,
                reads=set(),
                writes={obj},
                payload={obj: f"v{self.counter}".encode()},
            )
        )

    @precondition(lambda self: not self.crashed)
    @rule(src=st.sampled_from(OBJECTS), dst=st.sampled_from(OBJECTS))
    def logical_combine(self, src, dst):
        if src == dst:
            return
        if self.system.read(src) is None or self.system.read(dst) is None:
            return
        self.counter += 1
        self._execute(
            Operation(
                f"mix({src}->{dst})#{self.counter}",
                OpKind.LOGICAL,
                reads={src, dst},
                writes={dst},
                fn="wl_combine",
                params=(src, dst),
            )
        )

    @precondition(lambda self: not self.crashed)
    @rule(src=st.sampled_from(OBJECTS), dst=st.sampled_from(OBJECTS))
    def logical_derive(self, src, dst):
        if src == dst or self.system.read(src) is None:
            return
        self.counter += 1
        self._execute(
            Operation(
                f"derive({src}->{dst})#{self.counter}",
                OpKind.LOGICAL,
                reads={src},
                writes={dst},
                fn="wl_derive",
                params=(src, dst),
            )
        )

    @precondition(lambda self: not self.crashed)
    @rule(obj=st.sampled_from(OBJECTS))
    def touch(self, obj):
        if self.system.read(obj) is None:
            return
        self.counter += 1
        self._execute(
            Operation(
                f"touch({obj})#{self.counter}",
                OpKind.PHYSIOLOGICAL,
                reads={obj},
                writes={obj},
                fn="wl_touch",
                params=(obj,),
            )
        )

    @precondition(lambda self: not self.crashed)
    @rule(obj=st.sampled_from(OBJECTS))
    def delete(self, obj):
        if self.system.read(obj) is None:
            return
        self._execute(delete_object(obj))

    # ------------------------------------------------------------------
    # durability controls
    # ------------------------------------------------------------------
    @precondition(lambda self: not self.crashed)
    @rule()
    def force(self):
        self.system.log.force()

    @precondition(lambda self: not self.crashed)
    @rule(fraction=st.floats(min_value=0.0, max_value=1.0))
    def partial_force(self, fraction):
        buffered = self.system.log.buffered_lsis()
        if buffered:
            cut = buffered[int(fraction * (len(buffered) - 1))]
            self.system.log.force_through(cut)

    @precondition(lambda self: not self.crashed)
    @rule()
    def purge(self):
        self.system.purge()

    @precondition(lambda self: not self.crashed)
    @rule(truncate=st.booleans())
    def checkpoint(self, truncate):
        self.system.checkpoint(truncate=truncate)

    @precondition(lambda self: not self.crashed)
    @rule(obj=st.sampled_from(OBJECTS))
    def make_clean_and_evict(self, obj):
        entry = self.system.cache.entry(obj)
        if entry is None:
            return
        self.system.cache.make_clean(obj)
        self.system.cache.evict(obj)

    # ------------------------------------------------------------------
    # failure and repair
    # ------------------------------------------------------------------
    @precondition(lambda self: not self.crashed)
    @rule()
    def crash(self):
        self.system.crash()
        self.crashed = True

    @precondition(lambda self: self.crashed)
    @rule()
    def recover(self):
        self.system.recover()
        self.crashed = False
        verify_recovered(self.system)

    # ------------------------------------------------------------------
    # continuous invariants
    # ------------------------------------------------------------------
    @invariant()
    def write_graph_acyclic(self):
        if self.crashed:
            return
        assert self.system.cache.engine.is_acyclic()

    @invariant()
    def dirty_table_agrees_with_cache(self):
        if self.crashed:
            return
        cache = self.system.cache
        for obj in cache.dirty_objects():
            entry = cache.entry(obj)
            assert entry is not None, f"dirty {obj} not cached"
            # A dirty object has uninstalled updates or was installed
            # without flushing — either way its entry is dirty.
            assert entry.dirty, f"dirty-table {obj} has clean entry"

    @invariant()
    def vars_holders_unique(self):
        if self.crashed:
            return
        graph = self.system.cache.engine
        seen = set()
        for node in graph.nodes:
            overlap = seen & set(node.vars)
            assert not overlap, f"objects in two flush sets: {overlap}"
            seen |= set(node.vars)

    def teardown(self):
        # End every run cleanly: recover if crashed, verify, then
        # drain and verify once more.
        if self.crashed:
            self.system.recover()
        verify_recovered(self.system)
        self.system.flush_all()
        self.system.crash()
        self.system.recover()
        verify_recovered(self.system)


RecoverableSystemMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestRecoverableSystemMachine = RecoverableSystemMachine.TestCase
