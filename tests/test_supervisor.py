"""The recovery supervisor: restartable recovery, the escalation
ladder, budgets, and degraded read-only mode (repro.kernel.supervisor).

The torture-v2 campaigns sweep the whole fault space; these tests pin
each ladder rung individually with explicit schedules so a regression
names the rung it broke.
"""

from __future__ import annotations

import pytest

from repro.common.errors import DegradedModeError
from repro.kernel.backup_manager import BackupManager
from repro.kernel.supervisor import (
    FailureReport,
    RecoverySupervisor,
    SupervisorConfig,
)
from repro.kernel.system import (
    RecoverableSystem,
    SystemConfig,
    SystemHealth,
)
from repro.storage.faults import (
    RECOVERY_PHASE,
    FaultKind,
    FaultModel,
    FaultSpec,
    FaultyStore,
)
from repro.storage.stable_store import StoredVersion
from repro.wal.faulty_log import FaultyLog
from repro.workloads import register_workload_functions
from tests.conftest import physical


def _system(model):
    system = RecoverableSystem(
        SystemConfig(), store=FaultyStore(model), log=FaultyLog(model)
    )
    register_workload_functions(system.registry)
    return system


def _crashed_workload(model, operations=8, with_backup=True):
    """A small durable workload, crashed, model switched to the
    recovery phase — ready for supervised recovery."""
    system = _system(model)
    backup = BackupManager(system).take_backup() if with_backup else None
    for index in range(operations):
        system.execute(physical(f"obj:{index % 4}", b"v%d" % index))
    system.log.force()
    system.flush_all()
    system.crash()
    model.enter_phase(RECOVERY_PHASE)
    return system, backup


def _recovery_specs(*pairs):
    return [
        FaultSpec(point, kind, phase=RECOVERY_PHASE)
        for point, kind in pairs
    ]


class TestLadderRungs:
    def test_clean_run_converges_first_attempt(self):
        model = FaultModel()
        system, backup = _crashed_workload(model)
        report = RecoverySupervisor(system, backup=backup).run()
        assert report.converged
        assert report.attempts_used == 1
        assert report.final_health is SystemHealth.HEALTHY
        assert system.health is SystemHealth.HEALTHY
        assert report.objects_lost == []
        assert report.attempts[0].outcome == "converged"
        assert report.attempts[0].escalation == "none"
        assert system.last_failure_report is report

    def test_crash_mid_recovery_restarts(self):
        model = FaultModel(
            _recovery_specs((1, FaultKind.CRASH))
        )
        system, backup = _crashed_workload(model)
        report = RecoverySupervisor(system, backup=backup).run()
        assert report.converged
        assert report.attempts_used == 2
        assert [r.outcome for r in report.attempts] == [
            "crashed", "converged",
        ]
        assert [r.escalation for r in report.attempts] == [
            "restart", "none",
        ]
        assert system.stats.recovery_restarts == 1
        assert report.fault_trace() == ["crash@r1"]
        assert system.peek("obj:0") is not None

    def test_nested_crashes_converge(self):
        """Three crashes kill three successive attempts (continuous
        recovery-phase numbering); the fourth converges."""
        model = FaultModel(
            _recovery_specs(
                (0, FaultKind.CRASH),
                (2, FaultKind.CRASH),
                (4, FaultKind.CRASH),
            )
        )
        system, backup = _crashed_workload(model)
        report = RecoverySupervisor(system, backup=backup).run()
        assert report.converged
        assert report.attempts_used == 4
        assert system.stats.recovery_restarts == 3
        assert system.health is SystemHealth.HEALTHY

    def test_transient_log_scan_escalates_to_retry_rung(self):
        """Log scans are unwrapped faultable I/O (no inner retry), so
        a transient there surfaces from recover() and the supervisor's
        retry rung must absorb the burst — one failure per attempt."""
        spec = FaultSpec(
            1, FaultKind.TRANSIENT, times=2, phase=RECOVERY_PHASE
        )
        model = FaultModel([spec])
        system, backup = _crashed_workload(model)
        report = RecoverySupervisor(system, backup=backup).run()
        assert report.converged
        assert [r.outcome for r in report.attempts] == [
            "transient", "transient", "converged",
        ]
        assert report.attempts[0].escalation == "retry"
        assert system.health is SystemHealth.HEALTHY

    def test_media_restore_rung_heals_rotten_object(self):
        """Silent rot found during recovery: quarantine + backup
        restore converge back to HEALTHY with nothing lost."""
        model = FaultModel(armed=False)
        system, backup = _crashed_workload(model)
        victim = "obj:1"
        good = system.store._versions[victim]
        system.store._versions[victim] = StoredVersion(
            b"\x00ROT\x00", good.vsi
        )
        report = RecoverySupervisor(system, backup=backup).run()
        assert report.converged
        assert report.final_health is SystemHealth.HEALTHY
        assert report.objects_lost == []
        assert victim in report.objects_restored
        assert system.stats.quarantines >= 1
        assert system.peek(victim) is not None


class TestDegradedMode:
    def _degrade(self, allow_degraded=True):
        """Unrecoverable loss: rot an object whose derivation is off
        the log (checkpoint truncation) with no backup to restore."""
        model = FaultModel(armed=False)
        system = _system(model)
        for index in range(8):
            system.execute(physical(f"obj:{index % 4}", b"v%d" % index))
        system.flush_all()
        system.checkpoint(truncate=True)
        victim = "obj:1"
        good = system.store._versions[victim]
        system.store._versions[victim] = StoredVersion(
            b"\x00ROT\x00", good.vsi
        )
        system.crash()
        model.enter_phase(RECOVERY_PHASE)
        config = SupervisorConfig(
            allow_media_restore=False, allow_degraded=allow_degraded
        )
        report = RecoverySupervisor(system, config=config).run()
        return system, report, victim

    def test_unrecoverable_loss_lands_degraded(self):
        system, report, victim = self._degrade()
        assert report.converged
        assert report.final_health is SystemHealth.DEGRADED
        assert report.objects_lost == [victim]
        assert report.attempts[-1].escalation == "degrade"
        assert victim in system.lost_objects

    def test_degraded_reads_survivors_rejects_lost_and_writes(self):
        system, report, victim = self._degrade()
        # Intact objects stay readable.
        assert isinstance(system.read("obj:0"), bytes)
        # The lost object and all writes are refused, loudly.
        with pytest.raises(DegradedModeError):
            system.read(victim)
        with pytest.raises(DegradedModeError):
            system.execute(physical("obj:0", b"new"))

    def test_loss_with_degraded_disallowed_fails(self):
        system, report, victim = self._degrade(allow_degraded=False)
        assert report.final_health is SystemHealth.FAILED
        assert report.attempts[-1].escalation == "fail"
        with pytest.raises(RuntimeError):
            system.read("obj:0")


class TestBudgets:
    def test_attempt_budget_exhaustion_fails(self):
        model = FaultModel(
            _recovery_specs(
                (0, FaultKind.CRASH),
                (1, FaultKind.CRASH),
                (2, FaultKind.CRASH),
            )
        )
        system, backup = _crashed_workload(model)
        config = SupervisorConfig(max_attempts=2)
        report = RecoverySupervisor(system, backup=backup, config=config).run()
        assert not report.converged
        assert report.attempts_used == 2
        assert report.final_health is SystemHealth.FAILED
        assert system.health is SystemHealth.FAILED

    def test_deadline_bounds_wall_clock(self):
        ticks = iter(range(100))
        model = FaultModel(_recovery_specs((0, FaultKind.CRASH)))
        system, backup = _crashed_workload(model)
        config = SupervisorConfig(
            deadline=1.5, clock=lambda: float(next(ticks))
        )
        report = RecoverySupervisor(system, backup=backup, config=config).run()
        assert not report.converged
        assert report.final_health is SystemHealth.FAILED
        # First attempt crashed; the deadline stopped the second.
        assert report.attempts_used == 1
        assert report.elapsed > 1.5

    def test_backoff_uses_injectable_sleep(self):
        slept = []
        model = FaultModel(
            _recovery_specs((0, FaultKind.CRASH), (1, FaultKind.CRASH))
        )
        system, backup = _crashed_workload(model)
        config = SupervisorConfig(
            base_delay=0.125, max_delay=0.2, sleep=slept.append
        )
        report = RecoverySupervisor(system, backup=backup, config=config).run()
        assert report.converged
        assert slept == [0.125, 0.2]


class TestFailureReport:
    def test_report_carries_fault_trace_and_budget(self):
        model = FaultModel(_recovery_specs((0, FaultKind.CRASH)))
        system, backup = _crashed_workload(model)
        report = RecoverySupervisor(system, backup=backup).run()
        assert isinstance(report, FailureReport)
        assert report.max_attempts == 16
        assert report.deadline is None
        assert report.elapsed >= 0.0
        assert report.fault_trace() == ["crash@r0"]
        assert "converged in 2/16 attempts" in report.summary()

    def test_failure_summary_renders(self):
        from repro.analysis import failure_summary

        model = FaultModel(_recovery_specs((1, FaultKind.CRASH)))
        system, backup = _crashed_workload(model)
        report = RecoverySupervisor(system, backup=backup).run()
        text = failure_summary(report).render()
        assert "crash@r1" in text
        assert "converged" in text
        assert "healthy" in text
