"""Tests for the extended file-system features: truncate, rename, and
the recoverable directory object."""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import FsLoggingMode, RecoverableFileSystem


@pytest.fixture
def fs():
    return RecoverableFileSystem(RecoverableSystem(), track_directory=True)


class TestTruncate:
    def test_truncate_shortens(self, fs):
        fs.write_file("a", b"0123456789")
        fs.truncate("a", 4)
        assert fs.read_file("a") == b"0123"

    def test_truncate_beyond_length_is_noop(self, fs):
        fs.write_file("a", b"abc")
        fs.truncate("a", 100)
        assert fs.read_file("a") == b"abc"

    def test_truncate_missing_raises(self, fs):
        with pytest.raises(Exception):
            fs.truncate("ghost", 1)

    def test_truncate_logs_no_values(self, fs):
        fs.write_file("a", b"x" * 4096)
        before = fs.system.stats.log_value_bytes
        fs.truncate("a", 10)
        assert fs.system.stats.log_value_bytes == before


class TestRename:
    def test_rename_moves_content(self, fs):
        fs.write_file("old", b"content")
        fs.rename("old", "new")
        assert not fs.exists("old")
        assert fs.read_file("new") == b"content"

    def test_rename_missing_raises(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.rename("ghost", "x")

    def test_rename_logical_logs_no_values(self, fs):
        fs.write_file("old", b"z" * 8192)
        before = fs.system.stats.log_value_bytes
        fs.rename("old", "new")
        # Tombstone aside (1 byte), the 8 KiB content was never logged.
        assert fs.system.stats.log_value_bytes - before <= 2

    def test_rename_physical_mode(self):
        fs = RecoverableFileSystem(
            RecoverableSystem(), mode=FsLoggingMode.PHYSICAL
        )
        fs.write_file("old", b"data")
        fs.rename("old", "new")
        assert fs.read_file("new") == b"data"

    def test_rename_survives_crash(self, fs):
        system = fs.system
        fs.write_file("old", b"payload")
        fs.rename("old", "new")
        system.log.force()
        system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = RecoverableFileSystem(system, track_directory=True)
        assert recovered.read_file("new") == b"payload"
        assert not recovered.exists("old")


class TestDirectory:
    def test_listing_tracks_creates_and_deletes(self, fs):
        fs.write_file("a", b"1")
        fs.write_file("b", b"2")
        fs.copy("a", "c")
        assert fs.list_files() == ["a", "b", "c"]
        fs.delete("b")
        assert fs.list_files() == ["a", "c"]

    def test_rename_updates_listing(self, fs):
        fs.write_file("a", b"1")
        fs.rename("a", "z")
        assert fs.list_files() == ["z"]

    def test_listing_disabled_raises(self):
        fs = RecoverableFileSystem(RecoverableSystem())
        with pytest.raises(ValueError, match="directory tracking"):
            fs.list_files()

    def test_listing_survives_crash(self, fs):
        system = fs.system
        fs.write_file("a", b"1")
        fs.sort("a", "a.sorted")
        fs.write_file("tmp", b"2")
        fs.delete("tmp")
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = RecoverableFileSystem(system, track_directory=True)
        assert recovered.list_files() == ["a", "a.sorted"]

    def test_directory_updates_log_names_not_contents(self, fs):
        fs.write_file("big", b"x" * 16384)
        records_before = fs.system.stats.log_records
        bytes_before = fs.system.stats.log_bytes
        fs.copy("big", "big2")  # 1 copy record + 1 dir record
        assert fs.system.stats.log_records - records_before == 2
        assert fs.system.stats.log_bytes - bytes_before < 512
