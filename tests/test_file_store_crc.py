"""CRC framing, quarantine and fault injection for the file-backed
store (repro.storage.file_store, repro.storage.faultwrap)."""

import os

import pytest

from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.kernel.verify import verify_recovered
from repro.persist.file_log import FileLogManager
from repro.storage.faultwrap import FaultyFileStore
from repro.storage.file_store import (
    _HEADER,
    _MAGIC,
    _encode,
    FileStableStore,
)
from repro.storage.faults import FaultCrash, FaultKind, FaultModel, FaultSpec
from repro.workloads import register_workload_functions
from tests.conftest import physical


def _object_path(root, obj):
    return os.path.join(root, "objects", _encode(obj))


class TestFraming:
    def test_roundtrip(self, tmp_path):
        root = str(tmp_path)
        store = FileStableStore(root)
        store.write("x", b"value", 7)
        reopened = FileStableStore(root)
        version = reopened.read("x")
        assert (version.value, version.vsi) == (b"value", 7)

    def test_frame_starts_with_magic(self, tmp_path):
        root = str(tmp_path)
        FileStableStore(root).write("x", b"value", 1)
        with open(_object_path(root, "x"), "rb") as handle:
            assert handle.read(len(_MAGIC)) == _MAGIC

    def test_torn_file_quarantined_on_load(self, tmp_path):
        root = str(tmp_path)
        FileStableStore(root).write("x", b"value", 1)
        path = _object_path(root, "x")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        store = FileStableStore(root)
        assert not store.contains("x")
        assert store.stats.checksum_failures == 1
        assert "x" in store.scrub()
        # The damaged file was moved aside, evidence preserved.
        assert not os.path.exists(path)
        assert os.path.exists(
            os.path.join(root, "quarantine", _encode("x"))
        )

    def test_bit_flip_quarantined_on_load(self, tmp_path):
        root = str(tmp_path)
        FileStableStore(root).write("x", b"value", 1)
        path = _object_path(root, "x")
        flip = len(_MAGIC) + _HEADER.size + 2
        with open(path, "r+b") as handle:
            handle.seek(flip)
            byte = handle.read(1)[0]
            handle.seek(flip)
            handle.write(bytes([byte ^ 0x10]))
        store = FileStableStore(root)
        assert not store.contains("x")
        assert "x" in store.scrub()

    def test_foreign_file_quarantined_not_crashed(self, tmp_path):
        root = str(tmp_path)
        store = FileStableStore(root)
        with open(_object_path(root, "junk"), "wb") as handle:
            handle.write(b"not a frame at all")
        reopened = FileStableStore(root)
        assert "junk" in reopened.scrub()

    def test_delete_removes_file(self, tmp_path):
        root = str(tmp_path)
        store = FileStableStore(root)
        store.write("x", b"value", 1)
        store.delete("x")
        assert not os.path.exists(_object_path(root, "x"))
        assert not FileStableStore(root).contains("x")

    def test_scrub_clean_store_is_empty(self, tmp_path):
        store = FileStableStore(str(tmp_path))
        store.write("x", b"value", 1)
        store.write("y", b"other", 2)
        assert store.scrub() == []


class TestFaultyFileStore:
    def _system(self, root, *specs):
        model = FaultModel(specs)
        system = RecoverableSystem(
            SystemConfig(),
            store=FaultyFileStore(root, model),
            log=FileLogManager(root),
        )
        register_workload_functions(system.registry)
        return system, model

    def test_transient_write_retried_invisibly(self, tmp_path):
        system, _ = self._system(
            str(tmp_path), FaultSpec(0, FaultKind.TRANSIENT, times=2)
        )
        system.execute(physical("x", b"1"))
        system.log.force()
        system.flush_all()
        assert system.stats.fault_retries == 2
        assert FileStableStore(str(tmp_path)).read("x").value == b"1"

    def test_torn_object_write_quarantined_and_replayed(self, tmp_path):
        root = str(tmp_path)
        system, model = self._system(
            root, FaultSpec(0, FaultKind.TORN, crash=True)
        )
        system.execute(physical("x", b"durable"))
        system.log.force()
        with pytest.raises(FaultCrash):
            system.flush_all()
        model.armed = False
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.peek("x") == b"durable"
        assert system.stats.quarantines == 1

    def test_silent_bit_rot_caught_by_scrub_then_replayed(self, tmp_path):
        root = str(tmp_path)
        system, model = self._system(root, FaultSpec(0, FaultKind.CORRUPT))
        system.execute(physical("x", b"durable"))
        system.log.force()
        system.flush_all()  # completes; the medium rots the frame after
        model.armed = False
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.peek("x") == b"durable"
        assert system.stats.checksum_failures >= 1
        # The repaired value is dirty in the recovered cache; the next
        # flush makes it durable again with an intact frame.
        system.flush_all()
        assert FileStableStore(root).read("x").value == b"durable"
