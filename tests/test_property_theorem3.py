"""Direct property test of Theorem 3: the stable state at *any* crash
point is explainable.

The E7 matrix and the property crash-recovery suite verify the
consequence (recovery succeeds); this test checks the theorem's own
statement: after random workloads with random purges/forces, the
post-crash stable state is explained by some prefix set of the durable
history.  ``check_explainable`` first tries the leading edge and then
searches — for small histories the search is exhaustive, so a failure
here would be a genuine counterexample to the implementation's
Theorem 3.
"""

import random

from tests.conftest import examples
from hypothesis import given, settings, strategies as st

from repro import (
    CacheConfig,
    GraphMode,
    MultiObjectStrategy,
    RecoverableSystem,
    SystemConfig,
)
from repro.core.history import History
from repro.core.invariants import check_explainable, stable_values_of
from repro.core.oracle import Oracle
from repro.storage import ShadowInstall
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)


def _durable_history(system) -> History:
    history = History()
    for op in system.history:
        if system.log.is_stable(op.lsi):
            history.append(op)
    return history


def _uninstalled_in(system, durable: History) -> set:
    uninstalled = set(system.cache.uninstalled_operations())
    return {op for op in durable if op in uninstalled}


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    use_w=st.booleans(),
)
@settings(max_examples=examples(50), deadline=None)
def test_crash_state_always_explainable(seed, use_w):
    rng = random.Random(seed)
    cache = (
        CacheConfig(
            graph_mode=GraphMode.W,
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=ShadowInstall(),
        )
        if use_w
        else CacheConfig()
    )
    system = RecoverableSystem(SystemConfig(cache=cache))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=4, operations=10, object_size=24, p_delete=0.1
        ),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.4:
            system.log.force()
        if rng.random() < 0.3:
            system.purge()

    # The crash moment: volatile state is about to vanish.  The durable
    # history is the stable-log prefix; the uninstalled set is whatever
    # the cache manager still held of it.
    durable = _durable_history(system)
    uninstalled = _uninstalled_in(system, durable)
    oracle = Oracle(system.registry)
    check_explainable(
        durable,
        uninstalled,
        stable_values_of(system.store),
        oracle,
        search_on_failure=True,
    )
