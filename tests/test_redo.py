"""Unit tests for the REDO tests (repro.core.redo, Section 5)."""

from repro.common.identifiers import NULL_SI
from repro.core.operation import Operation, OpKind
from repro.core.redo import (
    GeneralizedRedoTest,
    RedoAll,
    RedoDecision,
    VsiRedoTest,
)
from repro.core.state_identifiers import DirtyObjectTable


def _op(lsi, writes=("x",)):
    op = Operation(
        f"op@{lsi}",
        OpKind.PHYSICAL,
        reads=set(),
        writes=set(writes),
        payload={obj: b"v" for obj in writes},
    )
    op.lsi = lsi
    return op


def _vsi(values):
    return lambda obj: values.get(obj, NULL_SI)


class TestRedoAll:
    def test_always_redo(self):
        test = RedoAll()
        decision = test.decide(
            _op(5), _vsi({"x": 100}), DirtyObjectTable()
        )
        assert decision is RedoDecision.REDO


class TestVsiRedoTest:
    def test_redo_when_stale(self):
        test = VsiRedoTest()
        assert (
            test.decide(_op(5), _vsi({"x": 3}), DirtyObjectTable())
            is RedoDecision.REDO
        )

    def test_skip_when_vsi_current(self):
        test = VsiRedoTest()
        assert (
            test.decide(_op(5), _vsi({"x": 5}), DirtyObjectTable())
            is RedoDecision.SKIP_INSTALLED
        )

    def test_any_object_proves_installation(self):
        # Atomic installation: one up-to-date object proves the whole
        # writeset installed even if others were never flushed (rW).
        test = VsiRedoTest()
        op = _op(5, writes=("x", "y"))
        decision = test.decide(
            op, _vsi({"x": NULL_SI, "y": 7}), DirtyObjectTable()
        )
        assert decision is RedoDecision.SKIP_INSTALLED

    def test_unexposed_not_detected(self):
        # The vSI test's blind spot: installed-without-flush operations
        # look uninstalled and get (safely but wastefully) redone.
        test = VsiRedoTest()
        dirty = DirtyObjectTable({"x": 9})  # rSI advanced past the op
        assert (
            test.decide(_op(5), _vsi({"x": 0}), dirty) is RedoDecision.REDO
        )


class TestGeneralizedRedoTest:
    def test_skip_clean_object(self):
        # Object not in the dirty table: every logged op on it is
        # installed (or its lifetime ended); never redo.
        test = GeneralizedRedoTest()
        decision = test.decide(_op(5), _vsi({}), DirtyObjectTable())
        assert decision is RedoDecision.SKIP_UNEXPOSED

    def test_skip_below_rsi(self):
        # lSI < rSI: the op was installed (possibly without flushing).
        test = GeneralizedRedoTest()
        dirty = DirtyObjectTable({"x": 9})
        decision = test.decide(_op(5), _vsi({"x": 0}), dirty)
        assert decision is RedoDecision.SKIP_UNEXPOSED

    def test_redo_at_rsi(self):
        test = GeneralizedRedoTest()
        dirty = DirtyObjectTable({"x": 5})
        assert (
            test.decide(_op(5), _vsi({"x": 0}), dirty) is RedoDecision.REDO
        )

    def test_vsi_backstop_catches_lost_installation_record(self):
        # The dirty table says redo (stale rSI because the installation
        # record was lost with the buffer), but the flushed version
        # proves installation.
        test = GeneralizedRedoTest()
        dirty = DirtyObjectTable({"x": 2})
        decision = test.decide(_op(5), _vsi({"x": 5}), dirty)
        assert decision is RedoDecision.SKIP_INSTALLED

    def test_vsi_backstop_can_be_disabled(self):
        test = GeneralizedRedoTest(check_vsi=False)
        dirty = DirtyObjectTable({"x": 2})
        assert (
            test.decide(_op(5), _vsi({"x": 5}), dirty) is RedoDecision.REDO
        )

    def test_multi_object_any_exposed_triggers_redo(self):
        test = GeneralizedRedoTest()
        op = _op(5, writes=("x", "y"))
        dirty = DirtyObjectTable({"x": 9, "y": 4})  # y still needs op
        assert (
            test.decide(op, _vsi({}), dirty) is RedoDecision.REDO
        )

    def test_names(self):
        assert RedoAll().name == "redo-all"
        assert VsiRedoTest().name == "vsi"
        assert GeneralizedRedoTest().name == "rsi"
