"""Tests for the faulty-storage simulation layer (repro.storage.faults,
repro.wal.faulty_log, repro.common.retry)."""

import random

import pytest

from repro.common.errors import CorruptObjectError, TransientStorageError
from repro.common.retry import backoff_delay, retry_transient
from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.kernel.verify import VerificationError, verify_recovered
from repro.storage.faults import (
    FORWARD_PHASE,
    RECOVERY_PHASE,
    FaultCrash,
    FaultKind,
    FaultModel,
    FaultSpec,
    FaultyStore,
    FuzzRates,
)
from repro.storage.stats import IOStats
from repro.wal.faulty_log import FaultyLog
from repro.workloads import register_workload_functions
from tests.conftest import physical


class TestRetryTransient:
    def test_absorbs_within_budget(self):
        stats = IOStats()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStorageError("flake")
            return "ok"

        assert retry_transient(flaky, stats=stats) == "ok"
        assert calls["n"] == 3
        assert stats.fault_retries == 2

    def test_raises_past_budget(self):
        def always():
            raise TransientStorageError("flake")

        with pytest.raises(TransientStorageError):
            retry_transient(always, attempts=3)

    def test_non_transient_errors_pass_through_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            retry_transient(broken)
        assert calls["n"] == 1


class TestBackoffDelay:
    def test_exponential_under_cap(self):
        assert backoff_delay(0, base_delay=0.1, max_delay=10.0) == 0.1
        assert backoff_delay(3, base_delay=0.1, max_delay=10.0) == 0.8

    def test_max_delay_caps_growth(self):
        assert backoff_delay(50, base_delay=0.1, max_delay=2.0) == 2.0

    def test_jitter_spreads_within_band(self):
        rng = random.Random(7)
        delays = [
            backoff_delay(
                2, base_delay=0.1, max_delay=10.0, jitter=0.5, rng=rng
            )
            for _ in range(200)
        ]
        # jitter=0.5 draws uniformly from [0.2, 0.4]
        assert all(0.2 <= d <= 0.4 for d in delays)
        assert len(set(delays)) > 1

    def test_full_jitter_reaches_zero_band(self):
        rng = random.Random(3)
        delays = [
            backoff_delay(
                0, base_delay=1.0, max_delay=1.0, jitter=1.0, rng=rng
            )
            for _ in range(200)
        ]
        assert min(delays) < 0.1 and max(delays) > 0.9

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(0, base_delay=0.1, jitter=1.5)

    def test_retry_sleeps_via_injectable_sleep(self):
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise TransientStorageError("flake")
            return "ok"

        assert (
            retry_transient(
                flaky, base_delay=0.25, max_delay=0.5, sleep=slept.append
            )
            == "ok"
        )
        # Three retries: 0.25, 0.5, capped 0.5 — and no real sleeping.
        assert slept == [0.25, 0.5, 0.5]

    def test_zero_base_delay_never_sleeps(self):
        def boom(_):
            raise AssertionError("sleep must not be called")

        def flaky():
            if not getattr(flaky, "done", False):
                flaky.done = True
                raise TransientStorageError("flake")
            return "ok"

        assert retry_transient(flaky, sleep=boom) == "ok"


class TestRetryDeadline:
    """The overall elapsed budget on retry_transient (daemon deadlines)."""

    @staticmethod
    def _clocked():
        state = {"now": 0.0}

        def clock():
            return state["now"]

        def sleep(seconds):
            state["now"] += seconds

        return state, clock, sleep

    def test_spent_budget_propagates_last_failure(self):
        state, clock, sleep = self._clocked()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            state["now"] += 0.6  # each attempt costs 0.6s of clock
            raise TransientStorageError("flake")

        with pytest.raises(TransientStorageError):
            retry_transient(
                flaky, attempts=10, deadline=1.0, clock=clock, sleep=sleep
            )
        # Attempt 1 ends at 0.6s (under budget, retry), attempt 2 ends
        # at 1.2s (budget spent, propagate) — not all ten attempts.
        assert calls["n"] == 2

    def test_sleep_clamped_to_remaining_budget(self):
        state, clock, sleep = self._clocked()
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise TransientStorageError("flake")

        with pytest.raises(TransientStorageError):
            retry_transient(
                flaky,
                attempts=4,
                base_delay=0.8,
                deadline=1.0,
                clock=clock,
                sleep=lambda s: (slept.append(s), sleep(s)),
            )
        # First backoff 0.8s fits; second (1.6s → clamped 0.2s) spends
        # the rest; the third failure then propagates on time.
        assert slept == [0.8, pytest.approx(0.2)]
        assert calls["n"] == 3
        assert state["now"] == pytest.approx(1.0)

    def test_success_within_budget_unaffected(self):
        state, clock, sleep = self._clocked()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStorageError("flake")
            return "ok"

        assert (
            retry_transient(
                flaky, deadline=5.0, base_delay=0.1,
                clock=clock, sleep=sleep,
            )
            == "ok"
        )
        assert state["now"] == pytest.approx(0.3)

    def test_zero_deadline_allows_single_attempt(self):
        # A zero budget degenerates to attempts=1 semantics: the first
        # try runs, and any failure propagates without a retry.
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise TransientStorageError("flake")

        with pytest.raises(TransientStorageError):
            retry_transient(flaky, attempts=5, deadline=0.0)
        assert calls["n"] == 1

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            retry_transient(lambda: "ok", deadline=-1.0)

    def test_no_deadline_keeps_attempts_budget(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise TransientStorageError("flake")

        with pytest.raises(TransientStorageError):
            retry_transient(flaky, attempts=4)
        assert calls["n"] == 4


class TestFaultPhases:
    def test_phases_number_independently(self):
        model = FaultModel()
        for _ in range(3):
            model.fire("store.write", "x")
        model.enter_phase(RECOVERY_PHASE)
        for _ in range(2):
            model.fire("store.read", "x")
        assert model.points_in(FORWARD_PHASE) == 3
        assert model.points_in(RECOVERY_PHASE) == 2
        assert model.next_point == 2  # current phase: recovery

    def test_reentering_a_phase_resumes_numbering(self):
        """Recovery-phase numbering is continuous across restarts: a
        re-entered phase picks up its counter, so a spec at recovery
        point k fires exactly once, in whichever attempt reaches it."""
        model = FaultModel(
            [FaultSpec(3, FaultKind.CRASH, phase=RECOVERY_PHASE)]
        )
        model.enter_phase(RECOVERY_PHASE)
        model.fire("store.read", "a")  # r0
        model.fire("store.read", "b")  # r1
        model.enter_phase(FORWARD_PHASE)
        model.fire("store.write", "c")  # forward 0 — not r2
        model.enter_phase(RECOVERY_PHASE)
        model.fire("store.read", "d")  # r2
        with pytest.raises(FaultCrash):
            model.fire("store.read", "e")  # r3 fires the spec
        assert model.trace() == ["crash@r3"]
        # A restarted recovery continues past the consumed point.
        model.enter_phase(RECOVERY_PHASE)
        assert model.fire("store.read", "f") is None  # r4

    def test_spec_phase_is_part_of_the_key(self):
        """A recovery-phase spec never fires at the same-numbered
        forward point, and vice versa."""
        model = FaultModel(
            [FaultSpec(0, FaultKind.TRANSIENT, phase=RECOVERY_PHASE)]
        )
        assert model.fire("store.write", "x") is None  # forward 0
        model.enter_phase(RECOVERY_PHASE)
        with pytest.raises(TransientStorageError):
            model.fire("store.read", "x")  # recovery 0

    def test_same_point_in_different_phases_allowed(self):
        model = FaultModel(
            [
                FaultSpec(3, FaultKind.TORN),
                FaultSpec(3, FaultKind.CORRUPT, phase=RECOVERY_PHASE),
            ]
        )
        assert len(model._specs) == 2

    def test_crash_kind_is_clean_death(self):
        """CRASH raises FaultCrash and damages nothing — the stored
        bytes are exactly what landed before the point."""
        store = FaultyStore(FaultModel([FaultSpec(1, FaultKind.CRASH)]))
        store.write("x", b"v", 1)  # point 0: clean
        with pytest.raises(FaultCrash):
            store.write("y", b"w", 2)  # point 1: machine dies
        assert store.read("x").value == b"v"
        assert not store.contains("y")
        assert store.scrub() == []

    def test_describe_prefixes_recovery_points(self):
        spec = FaultSpec(3, FaultKind.CRASH, phase=RECOVERY_PHASE)
        assert spec.describe() == "crash@r3"
        assert FaultSpec(3, FaultKind.CRASH).describe() == "crash@3"

    def test_fuzz_draws_crashes_at_crash_rate(self):
        model = FaultModel.fuzz(11, FuzzRates(
            transient=0.0, torn=0.0, corrupt=0.0, crash=1.0,
        ))
        with pytest.raises(FaultCrash):
            model.fire("store.write", "x")
        assert model.fired[0].kind is FaultKind.CRASH

    def test_fuzz_stamps_current_phase(self):
        model = FaultModel.fuzz(11, FuzzRates(
            transient=0.0, torn=0.0, corrupt=0.0, crash=1.0,
        ))
        model.enter_phase(RECOVERY_PHASE)
        with pytest.raises(FaultCrash):
            model.fire("store.read", "x")
        assert model.fired[0].describe() == "crash@r0"


class TestFaultModel:
    def test_counting_model_numbers_points(self):
        model = FaultModel()
        for _ in range(4):
            model.fire("store.write", "x")
        assert model.next_point == 4
        assert model.fired == []

    def test_scheduled_transient_raises_times_then_clears(self):
        model = FaultModel([FaultSpec(0, FaultKind.TRANSIENT, times=2)])
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                model.fire("store.write", "x")
        # Third attempt of the same I/O succeeds...
        assert model.fire("store.write", "x") is None
        # ...and consumed only ONE point: retries don't renumber.
        assert model.next_point == 2

    def test_damage_kind_not_in_can_is_benign(self):
        model = FaultModel([FaultSpec(0, FaultKind.TORN)])
        assert model.fire("store.read", "x", can=frozenset()) is None

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(
                [
                    FaultSpec(3, FaultKind.TORN),
                    FaultSpec(3, FaultKind.CORRUPT),
                ]
            )

    def test_disarmed_model_consumes_nothing(self):
        model = FaultModel([FaultSpec(0, FaultKind.TORN)], armed=False)
        assert model.fire("store.write", "x") is None
        assert model.next_point == 0

    def test_fuzz_is_deterministic_in_seed(self):
        def schedule(seed):
            model = FaultModel.fuzz(seed, FuzzRates(transient=0.3, torn=0.2))
            decisions = []
            for index in range(50):
                try:
                    spec = model.fire(
                        "store.write",
                        str(index),
                        can=frozenset({FaultKind.TORN}),
                    )
                    decisions.append(spec.describe() if spec else "-")
                except TransientStorageError:
                    decisions.append("io-error")
            return decisions

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_slow_fault_counts_but_passes(self):
        stats = IOStats()
        model = FaultModel([FaultSpec(0, FaultKind.SLOW)])
        assert model.fire("store.write", "x", stats=stats) is None
        assert stats.faults_injected == 1
        assert stats.extra["slow_ios"] == 1


class TestFaultyStore:
    def _store(self, *specs):
        return FaultyStore(FaultModel(specs))

    def test_clean_roundtrip(self):
        store = self._store()
        store.write("x", b"v", 1)
        assert store.read("x").value == b"v"

    def test_torn_write_detected_on_read(self):
        store = self._store(FaultSpec(0, FaultKind.TORN))
        store.write("x", b"value", 1)
        with pytest.raises(CorruptObjectError):
            store.read("x")
        assert store.stats.checksum_failures == 1

    def test_corrupt_read_detected(self):
        store = self._store(FaultSpec(1, FaultKind.CORRUPT))
        store.write("x", b"value", 1)  # point 0: clean
        with pytest.raises(CorruptObjectError):
            store.read("x")  # point 1: bit rot hits this read

    def test_scrub_finds_damage_without_reading(self):
        store = self._store(FaultSpec(0, FaultKind.TORN))
        store.write("x", b"value", 1)
        assert store.scrub() == ["x"]

    def test_quarantine_then_restore_heals(self):
        store = self._store(FaultSpec(0, FaultKind.TORN))
        store.write("x", b"value", 1)
        store.quarantine("x")
        assert not store.contains("x")
        store.write("x", b"value", 1)  # replay (no fault at point 1)
        assert store.read("x").value == b"value"
        assert store.scrub() == []

    def test_crash_demand_raises_after_damage(self):
        store = self._store(FaultSpec(0, FaultKind.TORN, crash=True))
        with pytest.raises(FaultCrash):
            store.write("x", b"value", 1)
        # The torn bytes landed before the machine died.
        assert store.scrub() == ["x"]


class TestFaultyLog:
    def _system(self, *specs):
        model = FaultModel(specs)
        system = RecoverableSystem(
            SystemConfig(), log=FaultyLog(model)
        )
        register_workload_functions(system.registry)
        return system, model

    def test_transient_force_is_invisible(self):
        system, _ = self._system(FaultSpec(0, FaultKind.TRANSIENT, times=2))
        system.execute(physical("x", b"1"))
        system.log.force()
        assert system.stats.fault_retries == 2
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_torn_force_loses_only_a_suffix(self):
        system, _ = self._system(FaultSpec(0, FaultKind.TORN))
        system.execute(physical("x", b"1"))
        system.execute(physical("y", b"2"))
        with pytest.raises(FaultCrash):
            system.log.force()
        lost = system.crash()
        # The torn force landed x's record and dropped y's.
        assert [op.name for op in lost] == ["wp(y)"]
        system.recover()
        verify_recovered(system)
        assert system.peek("x") == b"1"
        assert system.peek("y") is None

    def test_fsync_lie_breaks_durability_strawman(self):
        """The one fault outside the must-survive envelope: an
        undetected lying fsync loses durably-acknowledged operations,
        and the verifier catches the broken contract."""
        system, _ = self._system(FaultSpec(0, FaultKind.FSYNC_LIE))
        system.execute(physical("x", b"1"))
        system.log.force()  # lies: reports success, durability withheld
        system.crash()
        system.recover()
        with pytest.raises(VerificationError):
            verify_recovered(system)

    def test_honest_force_after_lie_repairs_durability(self):
        system, _ = self._system(FaultSpec(0, FaultKind.FSYNC_LIE))
        system.execute(physical("x", b"1"))
        system.log.force()  # lie
        system.execute(physical("y", b"2"))
        system.log.force()  # honest: one real fsync flushes everything
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.peek("x") == b"1"


class TestQuarantineRecovery:
    def test_corrupt_store_heals_via_log_replay(self):
        """End-to-end quarantine: damage a stored version, crash,
        recover — the pre-redo scrub quarantines it and widens the redo
        window so repeat history reinstates the object."""
        model = FaultModel([FaultSpec(1, FaultKind.CORRUPT)])
        system = RecoverableSystem(
            SystemConfig(), store=FaultyStore(model), log=FaultyLog(model)
        )
        register_workload_functions(system.registry)
        system.execute(physical("x", b"durable"))
        system.log.force()  # point 0: clean
        system.flush_all()  # point 1: install corrupts x's version
        model.armed = False
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.peek("x") == b"durable"
        assert system.stats.quarantines == 1
        assert system.stats.media_recoveries == 1
