"""Torture v5 (repro.replica.livefire): the pair under live fire.

A fast campaign — real daemons, real sockets, seeded primary kills and
zombie fences, promotion under load, and the cross-pair exactly-once
audit.  The heavy campaign runs in CI and E15; this keeps the harness
itself honest in the tier-1 suite.
"""

from __future__ import annotations

from repro.replica import (
    ReplicaLiveFireConfig,
    ReplicaLiveFireHarness,
)


def _config(**overrides) -> ReplicaLiveFireConfig:
    settings = dict(
        clients=2,
        requests_per_client=6,
        objects_per_client=2,
    )
    settings.update(overrides)
    return ReplicaLiveFireConfig(**settings)


class TestReplicaLiveFire:
    def test_kill_lane_run(self):
        harness = ReplicaLiveFireHarness(_config(zombie_ratio=0.0))
        outcome = harness.run(seed=1)
        assert outcome.ok, outcome.error or outcome.losses
        assert outcome.lane == "kill"
        assert outcome.promoted
        assert outcome.acked > 0
        assert outcome.losses == []
        assert outcome.old_epoch_acks == 0
        assert outcome.failover_seconds > 0

    def test_zombie_lane_run(self):
        # zombie_ratio=1.0 forces the lane: promote while the deposed
        # primary is still alive, then prove its acks are fenced.
        harness = ReplicaLiveFireHarness(_config(zombie_ratio=1.0))
        outcome = harness.run(seed=2)
        assert outcome.ok, outcome.error or outcome.losses
        assert outcome.lane == "zombie"
        assert outcome.promoted
        assert outcome.losses == []
        assert outcome.old_epoch_acks == 0

    def test_small_campaign_report(self):
        harness = ReplicaLiveFireHarness(_config(zombie_ratio=0.3))
        report = harness.campaign(3, seed=10)
        assert report.ok, report.summary()
        assert len(report.outcomes) == 3
        assert report.total_acked > 0
        assert report.total_losses == 0
        assert report.total_old_epoch_acks == 0
        assert all(outcome.promoted for outcome in report.outcomes)
        assert "torture v5" in report.summary()
        assert "OK" in report.summary()

    def test_campaign_is_seed_deterministic_in_lanes(self):
        # The lane choice is a pure function of the seed, so a failed
        # run's seed reproduces the same scenario shape.
        first = ReplicaLiveFireHarness(_config(zombie_ratio=0.5))
        second = ReplicaLiveFireHarness(_config(zombie_ratio=0.5))
        lanes_a = [first.run(seed).lane for seed in (20, 21)]
        lanes_b = [second.run(seed).lane for seed in (20, 21)]
        assert lanes_a == lanes_b
