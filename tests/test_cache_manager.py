"""Tests for the cache manager (repro.cache.cache_manager): execution,
WAL enforcement, installation, rSI advancement, eviction, checkpoints."""

import pytest

from repro.cache import CacheConfig, CacheManager, GraphMode, MultiObjectStrategy
from repro.common.errors import CacheError
from repro.core.functions import default_registry
from repro.core.operation import Operation, OpKind, delete_object
from repro.storage import IOStats, ShadowInstall, StableStore
from repro.wal.log_manager import LogManager
from repro.wal.records import CheckpointRecord, InstallationRecord, OperationRecord


def _physical(obj, data):
    return Operation(
        f"wp({obj})",
        OpKind.PHYSICAL,
        reads=set(),
        writes={obj},
        payload={obj: data},
    )


def _copy(src, dst):
    return Operation(
        f"cp({src},{dst})",
        OpKind.LOGICAL,
        reads={src},
        writes={dst},
        fn="copy",
        params=(src, dst),
    )


def _cm(config=None):
    stats = IOStats()
    store = StableStore(stats)
    log = LogManager(stats)
    cm = CacheManager(store, log, default_registry(), config, stats)
    return cm, store, log, stats


class TestExecute:
    def test_execute_applies_and_logs(self):
        cm, store, log, stats = _cm()
        op = _physical("x", b"v")
        writes = cm.execute(op)
        assert writes == {"x": b"v"}
        assert op.lsi > 0
        assert cm.read_object("x") == b"v"
        assert cm.vsi_of("x") == op.lsi
        assert stats.log_records == 1

    def test_read_through_populates_cache(self):
        cm, store, log, stats = _cm()
        store.write("x", b"disk", 1)
        assert cm.read_object("x") == b"disk"
        assert stats.object_reads == 1
        cm.read_object("x")  # now cached
        assert stats.object_reads == 1

    def test_writeset_mismatch_detected(self):
        cm, store, log, stats = _cm()
        registry = cm.registry
        registry.register("rogue", lambda reads: {"y": b"v"})
        op = Operation(
            "rogue", OpKind.LOGICAL, reads=set(), writes={"x"}, fn="rogue"
        )
        with pytest.raises(CacheError, match="declared writeset"):
            cm.execute(op)

    def test_dirty_table_tracks_first_writer(self):
        cm, store, log, stats = _cm()
        first = _physical("x", b"1")
        second = _physical("x", b"2")
        cm.execute(first)
        cm.execute(second)
        assert cm.dirty_table.rsi_of("x") == first.lsi


class TestWalEnforcement:
    def test_purge_forces_log_prefix(self):
        cm, store, log, stats = _cm()
        op = _physical("x", b"v")
        cm.execute(op)
        assert not log.is_stable(op.lsi)
        assert cm.purge()
        assert log.is_stable(op.lsi)
        assert store.read("x").value == b"v"

    def test_notx_blind_writer_forced(self):
        """Installing a node whose Notx is justified by a later blind
        writer must force that writer's record too, else a crash loses
        the only way to recover the unflushed object."""
        cm, store, log, stats = _cm()
        first = _physical("x", b"old")
        reader = _copy("x", "y")
        blind = _physical("x", b"new")
        for op in (first, reader, blind):
            cm.execute(op)
        # Install until 'first' is installed (its node has x in Notx).
        cm.purge()
        cm.purge()
        assert log.is_stable(blind.lsi)


class TestInstallation:
    def test_install_marks_clean_and_advances(self):
        cm, store, log, stats = _cm()
        op = _physical("x", b"v")
        cm.execute(op)
        cm.flush_all()
        assert cm.dirty_objects() == []
        entry = cm.entry("x")
        assert entry is not None and not entry.dirty
        assert store.read("x").vsi == op.lsi

    def test_unexposed_object_stays_dirty(self):
        cm, store, log, stats = _cm()
        first = _physical("x", b"old")
        blind = _physical("x", b"new")
        cm.execute(first)
        cm.execute(blind)
        cm.purge()  # installs first's node without flushing x
        assert cm.dirty_table.rsi_of("x") == blind.lsi
        assert not store.contains("x")  # never flushed
        cm.purge()  # installs blind, flushing x
        assert store.read("x").value == b"new"

    def test_clean_single_flush_logs_flush_record(self):
        # The degenerate physiological case uses the cheaper flush
        # record ("flushes can be lazily logged after the flush").
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"v"))
        cm.flush_all()
        log.force()
        kinds = [type(r).__name__ for r in log.stable_records()]
        assert "FlushRecord" in kinds
        assert "InstallationRecord" not in kinds

    def test_notx_install_logs_installation_record(self):
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"old"))
        cm.execute(_physical("x", b"new"))
        cm.purge()  # installs the first write with x unexposed
        log.force()
        kinds = [type(r).__name__ for r in log.stable_records()]
        assert "InstallationRecord" in kinds

    def test_installation_logging_can_be_disabled(self):
        cm, store, log, stats = _cm(CacheConfig(log_installations=False))
        cm.execute(_physical("x", b"v"))
        cm.flush_all()
        log.force()
        kinds = [type(r).__name__ for r in log.stable_records()]
        assert "InstallationRecord" not in kinds
        assert "FlushRecord" not in kinds

    def test_delete_removes_from_store_and_cache(self):
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"v"))
        cm.flush_all()
        cm.execute(delete_object("x"))
        cm.flush_all()
        assert not store.contains("x")
        assert cm.read_object("x") is None

    def test_purge_on_empty_cache_returns_false(self):
        cm, store, log, stats = _cm()
        assert cm.purge() is False


class TestEviction:
    def test_evict_clean(self):
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"v"))
        cm.flush_all()
        cm.evict("x")
        assert cm.entry("x") is None
        # Read-through works again.
        assert cm.read_object("x") == b"v"

    def test_evict_dirty_rejected(self):
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"v"))
        with pytest.raises(CacheError, match="dirty"):
            cm.evict("x")

    def test_make_clean_then_evict(self):
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"v"))
        cm.execute(_copy("x", "y"))
        cm.make_clean("y")
        cm.evict("y")
        assert cm.entry("y") is None

    def test_evict_uncached_is_noop(self):
        cm, store, log, stats = _cm()
        cm.evict("ghost")


class TestCheckpoint:
    def test_checkpoint_logs_dirty_table(self):
        cm, store, log, stats = _cm()
        op = _physical("x", b"v")
        cm.execute(op)
        cm.checkpoint()
        checkpoints = [
            r
            for r in log.stable_records()
            if isinstance(r, CheckpointRecord)
        ]
        assert len(checkpoints) == 1
        assert checkpoints[0].dirty_objects == {"x": op.lsi}

    def test_checkpoint_truncates_installed_prefix(self):
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"v"))
        cm.flush_all()
        cm.checkpoint(truncate=True)
        op_records = [
            r for r in log.stable_records() if isinstance(r, OperationRecord)
        ]
        assert op_records == []  # installed prefix discarded


class TestWMode:
    def test_w_mode_atomic_flush_of_overlapping_sets(self):
        config = CacheConfig(
            graph_mode=GraphMode.W,
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=ShadowInstall(),
        )
        cm, store, log, stats = _cm(config)
        registry = cm.registry
        registry.register(
            "two", lambda reads: {"x": b"1", "y": b"2"}
        )
        cm.execute(
            Operation(
                "two", OpKind.LOGICAL, reads=set(), writes={"x", "y"}, fn="two"
            )
        )
        cm.flush_all()
        assert stats.atomic_flushes == 1
        assert store.read("x").value == b"1"
        assert store.read("y").value == b"2"

    def test_w_mode_rejects_identity_strategy(self):
        with pytest.raises(ValueError, match="identity writes require"):
            CacheConfig(
                graph_mode=GraphMode.W,
                multi_object_strategy=MultiObjectStrategy.IDENTITY_WRITES,
            )


class TestAdoptRecovery:
    def test_adopt_rebuilds_bookkeeping(self):
        cm, store, log, stats = _cm()
        op = _physical("x", b"v")
        log.append_operation(op)
        log.force()  # adopted ops' records are already durable
        cm.adopt_recovery({"x": (b"v", op.lsi)}, [op])
        assert cm.read_object("x") == b"v"
        assert cm.dirty_table.rsi_of("x") == op.lsi
        assert cm.purge()
        assert store.read("x").value == b"v"

    def test_adopt_requires_empty(self):
        cm, store, log, stats = _cm()
        cm.execute(_physical("x", b"v"))
        with pytest.raises(CacheError, match="empty"):
            cm.adopt_recovery({}, [])
