"""Tests for cache-manager-initiated identity writes (Section 4)."""

import pytest

from repro.cache import CacheConfig, CacheManager, MultiObjectStrategy
from repro.core.functions import default_registry
from repro.core.operation import Operation, OpKind
from repro.storage import FlushTransaction, IOStats, ShadowInstall, StableStore
from repro.wal.log_manager import LogManager


def _multi_write_op():
    """An operation writing two objects at once: Y=f(X,Y) style merge
    producing a two-object atomic flush set."""
    return Operation(
        "pair", OpKind.LOGICAL, reads=set(), writes={"x", "y"}, fn="pair"
    )


def _cm(config=None):
    stats = IOStats()
    store = StableStore(stats)
    log = LogManager(stats)
    registry = default_registry()
    registry.register("pair", lambda reads: {"x": b"X", "y": b"Y"})
    cm = CacheManager(store, log, registry, config, stats)
    return cm, store, log, stats


class TestDissolution:
    def test_identity_writes_break_up_flush_set(self):
        cm, store, log, stats = _cm()  # default: identity writes
        cm.execute(_multi_write_op())
        assert cm.purge()
        # One identity write peeled one object; no atomic flush needed.
        assert stats.identity_writes == 1
        assert stats.atomic_flushes == 0

    def test_values_correct_after_full_drain(self):
        cm, store, log, stats = _cm()
        cm.execute(_multi_write_op())
        cm.flush_all()
        assert store.read("x").value == b"X"
        assert store.read("y").value == b"Y"

    def test_identity_write_logs_the_value(self):
        cm, store, log, stats = _cm()
        cm.execute(_multi_write_op())
        before = stats.log_value_bytes
        cm.purge()
        # The peeled object's value went to the log (physical record).
        assert stats.log_value_bytes > before

    def test_only_single_object_device_writes(self):
        cm, store, log, stats = _cm()
        cm.execute(_multi_write_op())
        cm.flush_all()
        # No shadow machinery, no pointer swings, no quiesce.
        assert stats.shadow_writes == 0
        assert stats.pointer_swings == 0
        assert stats.quiesce_events == 0


class TestAtomicAlternatives:
    def test_shadow_used_when_configured(self):
        config = CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=ShadowInstall(),
        )
        cm, store, log, stats = _cm(config)
        cm.execute(_multi_write_op())
        cm.flush_all()
        assert stats.atomic_flushes == 1
        assert stats.identity_writes == 0
        assert stats.pointer_swings == 1

    def test_flush_txn_used_when_configured(self):
        config = CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=FlushTransaction(),
        )
        cm, store, log, stats = _cm(config)
        cm.execute(_multi_write_op())
        cm.flush_all()
        assert stats.atomic_flushes == 1
        assert stats.quiesce_events == 1
        # Both objects logged + both written in place = 2x writes.
        assert stats.object_writes == 2
        assert stats.log_value_bytes >= 2


class TestCostComparison:
    def test_identity_cheaper_in_logged_values_for_pairs(self):
        """Section 4: 'we write log two object values when flushing
        atomically [flush transaction], but only one object value when
        using CM initiated writes'."""
        id_cm, _, _, id_stats = _cm()
        id_cm.execute(_multi_write_op())
        id_cm.flush_all()

        ft_config = CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=FlushTransaction(),
        )
        ft_cm, _, _, ft_stats = _cm(ft_config)
        ft_cm.execute(_multi_write_op())
        ft_cm.flush_all()

        assert id_stats.log_value_bytes < ft_stats.log_value_bytes
        assert id_stats.quiesce_events < ft_stats.quiesce_events


class TestIdentityWriteRecovery:
    def test_crash_after_partial_install_recovers(self):
        """Install the dissolved node (flushing one object), crash
        before the identity-write node flushes: the logged identity
        value recovers the unflushed object."""
        from repro.core.recovery import RecoveryManager
        from repro.core.redo import GeneralizedRedoTest

        cm, store, log, stats = _cm()
        cm.execute(_multi_write_op())
        cm.purge()  # dissolves and installs the first node only
        log.crash()  # lose any lazy records still buffered
        manager = RecoveryManager(
            log, store, cm.registry, GeneralizedRedoTest(), stats
        )
        outcome = manager.run()
        state = {
            obj: outcome.volatile.get(obj, (store.peek(obj).value, 0))[0]
            for obj in ("x", "y")
        }
        assert state == {"x": b"X", "y": b"Y"}
