"""Unit tests for the stable store (repro.storage.stable_store)."""

import pytest

from repro.common.identifiers import NULL_SI
from repro.storage import IOStats, StableStore
from repro.storage.stable_store import StoredVersion


class TestReadsAndWrites:
    def test_absent_object_reads_as_null(self):
        store = StableStore()
        version = store.read("x")
        assert version.value is None
        assert version.vsi == NULL_SI

    def test_write_then_read(self):
        store = StableStore()
        store.write("x", b"v", 5)
        assert store.read("x") == StoredVersion(b"v", 5)

    def test_contains_and_vsi(self):
        store = StableStore()
        assert not store.contains("x")
        assert store.vsi_of("x") == NULL_SI
        store.write("x", b"v", 3)
        assert store.contains("x")
        assert store.vsi_of("x") == 3

    def test_reads_and_writes_counted(self):
        stats = IOStats()
        store = StableStore(stats)
        store.write("x", b"v", 1)
        store.read("x")
        store.read("y")
        assert stats.object_writes == 1
        assert stats.object_reads == 2

    def test_peek_not_counted(self):
        stats = IOStats()
        store = StableStore(stats)
        store.write("x", b"v", 1)
        store.peek("x")
        assert stats.object_reads == 0

    def test_delete(self):
        store = StableStore()
        store.write("x", b"v", 1)
        store.delete("x")
        assert not store.contains("x")
        store.delete("x")  # idempotent


class TestWriteMany:
    def test_atomic_writes_all(self):
        store = StableStore()
        store.write_many(
            {"a": StoredVersion(b"1", 1), "b": StoredVersion(b"2", 2)},
            atomic=True,
        )
        assert store.read("a").value == b"1"
        assert store.read("b").value == b"2"

    def test_non_atomic_runs_hook_between_writes(self):
        store = StableStore()
        seen = []
        store.mid_write_hook = seen.append
        store.write_many(
            {"a": StoredVersion(b"1", 1), "b": StoredVersion(b"2", 2)},
            atomic=False,
        )
        assert sorted(seen) == ["a", "b"]

    def test_non_atomic_tears_on_hook_exception(self):
        store = StableStore()
        calls = {"n": 0}

        def hook(obj):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("crash")

        store.mid_write_hook = hook
        with pytest.raises(RuntimeError):
            store.write_many(
                {"a": StoredVersion(b"1", 1), "b": StoredVersion(b"2", 2)},
                atomic=False,
            )
        written = [obj for obj in ("a", "b") if store.contains(obj)]
        assert len(written) == 1  # torn: exactly one landed


class TestSnapshots:
    def test_copy_and_restore(self):
        store = StableStore()
        store.write("x", b"v", 1)
        snap = store.copy_versions()
        store.write("x", b"w", 2)
        store.restore_versions(snap)
        assert store.read("x").value == b"v"

    def test_object_ids_and_len(self):
        store = StableStore()
        store.write("a", b"", 1)
        store.write("b", b"", 2)
        assert sorted(store.object_ids()) == ["a", "b"]
        assert len(store) == 2
