"""Tests for B-tree deletion: logical merges, three-page borrows, root
collapse, and crash recovery through delete-heavy workloads."""

import random

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import RecoverableBTree
from repro.domains.btree import _bt_borrow, _bt_merge, _bt_parent_remove


class TestTransforms:
    def test_leaf_merge_concatenates(self):
        reads = {
            "L": ("leaf", (1, 2), (b"a", b"b")),
            "R": ("leaf", (5, 6), (b"e", b"f")),
        }
        got = _bt_merge(reads, "L", "R", 5)
        assert got == {"L": ("leaf", (1, 2, 5, 6), (b"a", b"b", b"e", b"f"))}

    def test_internal_merge_pulls_separator(self):
        reads = {
            "L": ("internal", (10,), ("c0", "c1")),
            "R": ("internal", (30,), ("c2", "c3")),
        }
        got = _bt_merge(reads, "L", "R", 20)
        assert got == {
            "L": ("internal", (10, 20, 30), ("c0", "c1", "c2", "c3"))
        }

    def test_merge_kind_mismatch_rejected(self):
        reads = {
            "L": ("leaf", (1,), (b"a",)),
            "R": ("internal", (2,), ("c0", "c1")),
        }
        with pytest.raises(ValueError, match="different kinds"):
            _bt_merge(reads, "L", "R", 1)

    def test_parent_remove(self):
        reads = {"P": ("internal", (10, 20), ("c0", "c1", "c2"))}
        got = _bt_parent_remove(reads, "P", 0)
        assert got == {"P": ("internal", (20,), ("c0", "c2"))}

    def test_borrow_from_left_leaf(self):
        reads = {
            "P": ("internal", (10,), ("L", "C")),
            "C": ("leaf", (10, 11), (b"x", b"y")),
            "L": ("leaf", (1, 2, 3), (b"a", b"b", b"c")),
        }
        got = _bt_borrow(reads, "P", "C", "L", 1, True)
        assert got["C"] == ("leaf", (3, 10, 11), (b"c", b"x", b"y"))
        assert got["L"] == ("leaf", (1, 2), (b"a", b"b"))
        assert got["P"][1] == (3,)  # new separator = child's new first key

    def test_borrow_from_right_leaf(self):
        reads = {
            "P": ("internal", (10,), ("C", "R")),
            "C": ("leaf", (1,), (b"a",)),
            "R": ("leaf", (10, 11, 12), (b"x", b"y", b"z")),
        }
        got = _bt_borrow(reads, "P", "C", "R", 0, False)
        assert got["C"] == ("leaf", (1, 10), (b"a", b"x"))
        assert got["R"] == ("leaf", (11, 12), (b"y", b"z"))
        assert got["P"][1] == (11,)

    def test_borrow_internal_rotates_through_parent(self):
        reads = {
            "P": ("internal", (50,), ("L", "C")),
            "C": ("internal", (70,), ("c2", "c3")),
            "L": ("internal", (10, 30), ("c0", "c1", "cx")),
        }
        got = _bt_borrow(reads, "P", "C", "L", 1, True)
        assert got["C"] == ("internal", (50, 70), ("cx", "c2", "c3"))
        assert got["L"] == ("internal", (10,), ("c0", "c1"))
        assert got["P"][1] == (30,)


class TestDeleteBehaviour:
    def test_delete_missing_is_noop(self):
        tree = RecoverableBTree(RecoverableSystem(), capacity=4)
        tree.insert(1, b"a")
        tree.delete(99)
        assert tree.check_structure() == 1

    def test_delete_to_empty_and_reuse(self):
        tree = RecoverableBTree(RecoverableSystem(), capacity=4)
        for key in range(40):
            tree.insert(key, b"v")
        for key in range(40):
            tree.delete(key)
        assert tree.items() == []
        tree.insert(7, b"back")
        assert tree.lookup(7) == b"back"

    def test_root_collapse_shrinks_height(self):
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=4)
        for key in range(30):
            tree.insert(key, b"v")
        deep_root = system.read(tree.root_ptr_obj)
        for key in range(29):
            tree.delete(key)
        shallow_root = system.read(tree.root_ptr_obj)
        assert deep_root != shallow_root
        assert tree.check_structure() == 1

    def test_merge_deletes_sibling_page(self):
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=4)
        for key in range(20):
            tree.insert(key, b"v")
        pages_before = len(list(tree._walk_page_ids()))
        for key in range(15):
            tree.delete(key)
        pages_after = len(list(tree._walk_page_ids()))
        assert pages_after < pages_before

    @pytest.mark.parametrize("capacity", [3, 4, 5, 8])
    def test_random_mix_keeps_invariants(self, capacity):
        rng = random.Random(capacity)
        tree = RecoverableBTree(RecoverableSystem(), capacity=capacity)
        alive = set()
        for _round in range(300):
            key = rng.randrange(60)
            if key in alive and rng.random() < 0.5:
                tree.delete(key)
                alive.discard(key)
            else:
                tree.insert(key, f"v{key}".encode())
                alive.add(key)
        assert tree.check_structure() == len(alive)
        assert [k for k, _v in tree.items()] == sorted(alive)


class TestDeleteRecovery:
    def test_crash_during_delete_heavy_workload(self):
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=4)
        for key in range(80):
            tree.insert(key, f"v{key}".encode())
        for key in range(0, 80, 2):
            tree.delete(key)
        system.log.force()
        for _ in range(7):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = RecoverableBTree(system, capacity=4)
        assert [k for k, _v in recovered.items()] == list(range(1, 80, 2))
        assert recovered.check_structure() == 40

    def test_merged_away_pages_not_recovered(self):
        """Pages deleted by merges are transient objects: after full
        installation + checkpoint, recovery does nothing for them."""
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=4)
        for key in range(40):
            tree.insert(key, b"v")
        for key in range(35):
            tree.delete(key)
        system.flush_all()
        system.checkpoint()
        system.crash()
        report = system.recover()
        verify_recovered(system)
        assert report.ops_redone == 0
