"""Torn-tail handling of the file-backed WAL (repro.persist.file_log).

These tests damage ``wal.log`` directly — byte surgery, not the fault
model — and assert the open-time repair: replay stops at the first bad
frame and the file is truncated back to the last good one.
"""

import os
import struct
import zlib

import pytest

from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.persist.file_log import _HEADER, FileLogManager
from repro.persist.faulty_log import FaultyFileLog
from repro.storage.faults import FaultCrash, FaultKind, FaultModel, FaultSpec
from repro.wal.records import OperationRecord
from repro.workloads import register_workload_functions
from tests.conftest import physical


def _write_records(path, names):
    system = RecoverableSystem(
        SystemConfig(), log=FileLogManager(path)
    )
    register_workload_functions(system.registry)
    for name in names:
        system.execute(physical(name, name.encode()))
    system.log.force()
    return system


def _frames(log_file):
    """(offset, length) of every well-formed frame in the file."""
    with open(log_file, "rb") as handle:
        data = handle.read()
    frames = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        length, _ = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > len(data):
            break
        frames.append((offset, end - offset))
        offset = end
    return frames


def _op_names(log):
    return [
        record.op.name
        for record in log.stable_records()
        if isinstance(record, OperationRecord)
    ]


class TestTornTail:
    def test_header_split_across_final_partial_write(self, tmp_path):
        root = str(tmp_path)
        _write_records(root, ["x", "y"])
        log_file = os.path.join(root, "wal.log")
        # Append half a header: the classic power-cut mid-write tail.
        with open(log_file, "ab") as handle:
            handle.write(struct.pack("<I", 12345)[:2])
        size_before = sum(length for _, length in _frames(log_file))
        log = FileLogManager(root)
        assert _op_names(log) == ["wp(x)", "wp(y)"]
        # The repair truncated the file back to the good frames.
        assert os.path.getsize(log_file) == size_before

    def test_crc_mismatch_in_middle_frame_stops_replay_there(self, tmp_path):
        root = str(tmp_path)
        _write_records(root, ["x", "y", "z"])
        log_file = os.path.join(root, "wal.log")
        frames = _frames(log_file)
        assert len(frames) >= 3
        # Flip one payload bit of the SECOND frame.
        offset, _ = frames[1]
        with open(log_file, "r+b") as handle:
            pos = offset + _HEADER.size + 1
            handle.seek(pos)
            byte = handle.read(1)[0]
            handle.seek(pos)
            handle.write(bytes([byte ^ 0x01]))
        log = FileLogManager(root)
        # Replay keeps frame 1 only: everything from the bad frame on
        # (including the intact third frame) is gone — a log is a
        # prefix-valid structure, not a hole-tolerant one.
        assert _op_names(log) == ["wp(x)"]
        assert os.path.getsize(log_file) == frames[0][1]

    def test_zero_length_payload_frame_treated_as_torn(self, tmp_path):
        root = str(tmp_path)
        _write_records(root, ["x"])
        log_file = os.path.join(root, "wal.log")
        good_size = os.path.getsize(log_file)
        # A full header claiming an empty payload with a matching CRC:
        # checksum passes (crc32(b"") == 0) but there is no record to
        # decode — the load must treat it as a torn tail, not crash.
        with open(log_file, "ab") as handle:
            handle.write(_HEADER.pack(0, zlib.crc32(b"")))
        log = FileLogManager(root)
        assert _op_names(log) == ["wp(x)"]
        assert os.path.getsize(log_file) == good_size

    def test_repair_is_idempotent(self, tmp_path):
        root = str(tmp_path)
        _write_records(root, ["x", "y"])
        log_file = os.path.join(root, "wal.log")
        with open(log_file, "ab") as handle:
            handle.write(b"\x01")
        FileLogManager(root)
        size_after_first = os.path.getsize(log_file)
        log = FileLogManager(root)
        assert os.path.getsize(log_file) == size_after_first
        assert _op_names(log) == ["wp(x)", "wp(y)"]


class TestFaultyFileLog:
    def test_torn_force_lands_prefix_and_crash_repairs(self, tmp_path):
        root = str(tmp_path)
        model = FaultModel([FaultSpec(0, FaultKind.TORN)])
        system = RecoverableSystem(
            SystemConfig(), log=FaultyFileLog(root, model)
        )
        register_workload_functions(system.registry)
        system.execute(physical("x", b"1"))
        system.execute(physical("y", b"2"))
        with pytest.raises(FaultCrash):
            system.log.force()
        log_file = os.path.join(root, "wal.log")
        # On disk: x's whole frame plus half of y's.
        torn_size = os.path.getsize(log_file)
        assert torn_size > sum(length for _, length in _frames(log_file))
        model.armed = False
        system.crash()
        system.recover()
        assert system.peek("x") == b"1"
        assert system.peek("y") is None
        # The simulated restart repaired the tail.
        assert os.path.getsize(log_file) == sum(
            length for _, length in _frames(log_file)
        )
        # And a real re-open agrees with the in-memory survivor set.
        assert _op_names(FileLogManager(root)) == ["wp(x)"]

    def test_transient_force_retried_invisibly(self, tmp_path):
        root = str(tmp_path)
        model = FaultModel([FaultSpec(0, FaultKind.TRANSIENT, times=2)])
        system = RecoverableSystem(
            SystemConfig(), log=FaultyFileLog(root, model)
        )
        register_workload_functions(system.registry)
        system.execute(physical("x", b"1"))
        system.log.force()
        assert system.stats.fault_retries == 2
        assert _op_names(FileLogManager(root)) == ["wp(x)"]
