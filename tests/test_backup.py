"""Tests for fuzzy backups and media recovery (repro.storage.backup)."""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.storage import FuzzyBackup, StableStore
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from tests.conftest import logical, physical


class TestBackupMechanics:
    def test_copy_and_restore(self):
        store = StableStore()
        store.write("x", b"v", 3)
        backup = FuzzyBackup(start_lsi=1)
        backup.copy_all(store)
        backup.finish()
        store.write("x", b"newer", 9)
        backup.restore_into(store)
        assert store.peek("x").value == b"v"

    def test_copy_after_finish_rejected(self):
        store = StableStore()
        backup = FuzzyBackup(start_lsi=1)
        backup.finish()
        with pytest.raises(ValueError, match="finished"):
            backup.copy_object(store, "x")

    def test_restore_unfinished_rejected(self):
        backup = FuzzyBackup(start_lsi=1)
        with pytest.raises(ValueError, match="unfinished"):
            backup.restore_into(StableStore())

    def test_missing_objects_skipped(self):
        store = StableStore()
        backup = FuzzyBackup(start_lsi=1)
        backup.copy_object(store, "ghost")
        backup.finish()
        assert len(backup) == 0


class TestMediaRecovery:
    def test_fuzzy_backup_plus_log_suffix_recovers(self):
        """The media-recovery path: a backup taken *while execution
        continues* (so the image mixes object versions, potentially
        violating flush order), restored and repaired by replaying the
        log from the backup-start point."""
        system = RecoverableSystem()
        register_workload_functions(system.registry)

        # Phase 1: establish some flushed state.
        system.execute(physical("x", b"base-x"))
        system.execute(physical("y", b"base-y"))
        system.flush_all()

        backup = FuzzyBackup(start_lsi=system.log.stable_end_lsi() + 1)
        backup.copy_object(system.store, "x")

        # Concurrent execution between the two copies: the fuzz.
        system.execute(
            logical("mix", "wl_combine", {"x", "y"}, {"y"}, ("x", "y"))
        )
        system.execute(physical("x", b"new-x"))
        system.flush_all()

        backup.copy_object(system.store, "y")  # newer than backup's x
        backup.finish()

        # More work after the backup completes.
        system.execute(
            logical("mix2", "wl_combine", {"y", "x"}, {"x"}, ("y", "x"))
        )
        system.flush_all()
        expected = {obj: system.read(obj) for obj in ("x", "y")}

        # Media failure: lose the stable store, restore the backup,
        # then run media-mode redo recovery over the retained log
        # suffix, starting at the backup-start point.
        backup.restore_into(system.store)
        system.crash()
        system.recover(media_redo_start=backup.start_lsi)
        verify_recovered(system)
        assert {obj: system.read(obj) for obj in ("x", "y")} == expected

    def test_truncation_guard_protects_backup_window(self):
        """The log manager refuses truncation past a protected point,
        which media recovery uses to keep the backup's redo window."""
        from repro.common.errors import LogTruncationError

        system = RecoverableSystem()
        system.execute(physical("x", b"v"))
        system.flush_all()
        system.log.force()
        backup_start = 1
        with pytest.raises(LogTruncationError):
            system.log.truncate_before(
                system.log.stable_end_lsi() + 1, redo_start=backup_start
            )
