"""Unit tests for repro.obs: histograms, spans, the registry,
collectors, the event stream, the null object, and both exporters."""

import math

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_OBS,
    NullRegistry,
    dump_jsonl,
    load_jsonl,
    render_prometheus,
)
from repro.obs.export import sanitize_metric_name


class TestHistogram:
    def test_boundary_is_inclusive_upper_bound(self):
        hist = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        hist.observe(1.0)  # le=1.0 bucket (Prometheus le semantics)
        hist.observe(1.5)  # le=2.0
        hist.observe(2.0)  # le=2.0
        hist.observe(4.0)  # le=4.0
        hist.observe(9.0)  # overflow
        assert hist.buckets == [1, 2, 1, 1]
        assert hist.count == 5

    def test_every_default_latency_boundary_lands_in_own_bucket(self):
        hist = Histogram("h")
        for boundary in LATENCY_BUCKETS:
            hist.observe(boundary)
        assert hist.buckets == [1] * len(LATENCY_BUCKETS) + [0]

    def test_count_buckets_are_powers_of_two(self):
        hist = Histogram("h", boundaries=COUNT_BUCKETS)
        hist.observe(3)
        assert hist.buckets[2] == 1  # le=4

    def test_quantiles(self):
        hist = Histogram("h", boundaries=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 0.6, 0.7, 0.8, 0.9, 1.5, 1.6, 1.7, 3.0, 7.0):
            hist.observe(value)
        # p50: rank 5 of 10 -> cumulative reaches 5 in the le=1.0 bucket.
        assert hist.quantile(0.5) == 1.0
        # p99: rank 9.9 -> last occupied bucket (le=8.0), capped at max.
        assert hist.quantile(0.99) == 7.0

    def test_quantile_empty_and_overflow(self):
        hist = Histogram("h", boundaries=(1.0,))
        assert hist.quantile(0.5) == 0.0
        hist.observe(100.0)
        assert hist.quantile(0.5) == 100.0  # overflow reports max

    def test_mean_min_max(self):
        hist = Histogram("h", boundaries=(10.0,))
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0
        assert hist.min == 2.0
        assert hist.max == 4.0
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == 6.0

    def test_rejects_empty_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())


class TestRegistryPrimitives:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        reg.gauge("g", 7.5)
        reg.gauge("g", 2.5)
        assert reg.counters["a"] == 5
        assert reg.gauges["g"] == 2.5

    def test_observe_creates_histogram_once(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.001)
        reg.observe("h", 0.002)
        assert reg.histograms["h"].count == 2

    def test_clear(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.observe("h", 1.0)
        with reg.span("s"):
            pass
        reg.clear()
        assert not reg.counters
        assert not reg.histograms
        assert not reg.spans


class TestSpans:
    def test_duration_lands_in_same_named_histogram(self):
        reg = MetricsRegistry()
        with reg.span("phase.x"):
            pass
        assert reg.histograms["phase.x"].count == 1

    def test_nesting_records_parent(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        events = {event["name"]: event for event in reg.span_events()}
        assert events["inner"]["parent"] == "outer"
        assert events["outer"]["parent"] is None
        assert not reg._span_stack

    def test_tags_and_tag_method(self):
        reg = MetricsRegistry()
        with reg.span("s", attempt=3) as span:
            span.tag(outcome="converged")
        (event,) = reg.span_events("s")
        assert event["tags"] == {"attempt": 3, "outcome": "converged"}

    def test_exception_safety(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                with reg.span("inner"):
                    raise RuntimeError("boom")
        events = {event["name"]: event for event in reg.span_events()}
        assert events["inner"]["tags"]["outcome"] == "error"
        assert "boom" in events["inner"]["tags"]["error"]
        assert events["outer"]["tags"]["outcome"] == "error"
        # The stack fully unwound: a new span is a root again.
        with reg.span("after"):
            pass
        assert reg.span_events("after")[0]["parent"] is None

    def test_span_deque_is_bounded(self):
        reg = MetricsRegistry(max_span_events=3)
        for index in range(5):
            with reg.span("s", n=index):
                pass
        kept = [event["tags"]["n"] for event in reg.span_events()]
        assert kept == [2, 3, 4]
        # The histogram still saw every completion.
        assert reg.histograms["s"].count == 5


class TestCollectorsAndSinks:
    def test_collector_values_merge_into_snapshot(self):
        reg = MetricsRegistry()
        reg.add_collector("io", lambda: {"reads": 7, "mode": "rw"})
        snap = reg.snapshot()
        assert snap["counters"]["io.reads"] == 7
        assert snap["info"]["io.mode"] == "rw"

    def test_counter_value_compat_accessor(self):
        reg = MetricsRegistry()
        reg.count("direct", 2)
        reg.add_collector("io", lambda: {"reads": 7})
        assert reg.counter_value("direct") == 2
        assert reg.counter_value("io.reads") == 7
        assert reg.counter_value("io.missing") == 0
        assert reg.counter_value("nope.reads") == 0

    def test_collector_prefix_replaces(self):
        reg = MetricsRegistry()
        reg.add_collector("io", lambda: {"reads": 1})
        reg.add_collector("io", lambda: {"reads": 99})
        assert reg.counter_value("io.reads") == 99
        assert len(reg._collectors) == 1

    def test_emit_counts_and_fans_out(self):
        reg = MetricsRegistry()
        seen = []

        class Sink:
            def emit(self, kind, **details):
                seen.append((kind, details))

        sink = Sink()
        reg.subscribe(sink)
        reg.subscribe(sink)  # idempotent
        reg.emit("install", obj="x")
        assert seen == [("install", {"obj": "x"})]
        assert reg.counters["events.install"] == 1
        reg.unsubscribe(sink)
        reg.emit("install", obj="y")
        assert len(seen) == 1


class TestNullRegistry:
    def test_shared_instance_disabled(self):
        assert isinstance(NULL_OBS, NullRegistry)
        assert NULL_OBS.enabled is False

    def test_all_operations_are_noops(self):
        NULL_OBS.count("a")
        NULL_OBS.gauge("g", 1.0)
        NULL_OBS.observe("h", 1.0)
        NULL_OBS.emit("kind", detail=1)
        NULL_OBS.add_collector("p", dict)
        NULL_OBS.subscribe(object())
        with NULL_OBS.span("s", a=1) as span:
            span.tag(b=2)
        assert NULL_OBS.span_events() == []
        assert NULL_OBS.counter_value("a") == 0
        snap = NULL_OBS.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_null_span_is_shared(self):
        assert NULL_OBS.span("a") is NULL_OBS.span("b")


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.count("wal.appends", 12)
        reg.count("events.install", 3)
        reg.gauge("recovery.last_attempts", 2)
        for value in (0.002, 0.004, 0.5):
            reg.observe("wal.force", value)
        reg.add_collector("io", lambda: {"log_forces": 5, "engine": "rW"})
        with reg.span("recovery.attempt", attempt=0, phase="recovery"):
            pass
        return reg

    def test_prometheus_rendering(self):
        text = render_prometheus(self._populated())
        assert "repro_wal_appends_total 12" in text
        assert "repro_io_log_forces_total 5" in text
        assert 'repro_wal_force_bucket{le="0.0025"} 1' in text
        assert 'repro_wal_force_bucket{le="+Inf"} 3' in text
        assert "repro_wal_force_count 3" in text
        assert "repro_recovery_last_attempts 2" in text
        # Cumulative bucket counts are monotone.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_wal_force_bucket")
        ]
        assert counts == sorted(counts)

    def test_prometheus_accepts_snapshot_mapping(self):
        reg = self._populated()
        assert render_prometheus(reg.snapshot()) == render_prometheus(reg)

    def test_name_sanitization(self):
        assert sanitize_metric_name("wal.force-batch size") == \
            "wal_force_batch_size"
        text = render_prometheus(self._populated())
        assert "wal.force" not in text

    def test_jsonl_round_trip_preserves_counters(self, tmp_path):
        reg = self._populated()
        path = str(tmp_path / "metrics.jsonl")
        dump_jsonl(reg, path)
        loaded = load_jsonl(path)
        snap = reg.snapshot()
        assert loaded["snapshot"]["counters"] == snap["counters"]
        assert loaded["snapshot"]["gauges"] == snap["gauges"]
        hist = loaded["snapshot"]["histograms"]["wal.force"]
        assert hist["count"] == 3
        assert hist["p99"] == pytest.approx(snap["histograms"]["wal.force"]["p99"])
        (span,) = loaded["spans"]
        assert span["name"] == "recovery.attempt"
        assert span["tags"]["phase"] == "recovery"
        assert not math.isnan(span["seconds"])

    def test_jsonl_round_trip_renders_identically(self, tmp_path):
        reg = self._populated()
        path = str(tmp_path / "metrics.jsonl")
        dump_jsonl(reg, path)
        loaded = load_jsonl(path)
        assert render_prometheus(loaded["snapshot"]) == render_prometheus(reg)
