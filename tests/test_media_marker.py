"""The persisted ``media_redo_pending`` marker: restartable media
recovery across *cold process restarts*.

The in-memory store already keeps the restore-pending window so a
mid-recovery crash inside one process re-widens (tested by the torture
v2 campaigns).  The file store persists the same marker in the database
directory, so the widening also survives losing the process entirely —
the crash-between-restore-and-restart schedule that an in-memory
attribute cannot cover."""

import os

import pytest

from repro.common.errors import SimulatedCrash
from repro.common.identifiers import NULL_SI
from repro.domains.kvstore import KVPageStore, register_kv_functions
from repro.kernel.supervisor import SupervisorConfig
from repro.persist import FileStableStore, PersistentSystem
from repro.storage.framing import MARKER_NAME as _MARKER_NAME


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "db")


def _marker_path(dbdir):
    return os.path.join(dbdir, _MARKER_NAME)


class TestMarkerFile:
    def test_round_trip_across_instances(self, dbdir):
        store = FileStableStore(dbdir)
        assert store.media_redo_pending is None
        store.media_redo_pending = 17
        assert os.path.exists(_marker_path(dbdir))
        again = FileStableStore(dbdir)
        assert again.media_redo_pending == 17

    def test_clear_removes_the_file(self, dbdir):
        store = FileStableStore(dbdir)
        store.media_redo_pending = 5
        store.media_redo_pending = None
        assert not os.path.exists(_marker_path(dbdir))
        assert FileStableStore(dbdir).media_redo_pending is None

    def test_rewrite_narrows_in_memory_and_on_disk(self, dbdir):
        store = FileStableStore(dbdir)
        store.media_redo_pending = 9
        store.media_redo_pending = 3
        assert FileStableStore(dbdir).media_redo_pending == 3

    def test_corrupt_marker_widens_maximally(self, dbdir):
        store = FileStableStore(dbdir)
        store.media_redo_pending = 42
        with open(_marker_path(dbdir), "wb") as handle:
            handle.write(b"garbage that is not a frame")
        again = FileStableStore(dbdir)
        # A torn marker still proves a restore was in flight: widen to
        # the whole retained log, the safe direction.
        assert again.media_redo_pending == NULL_SI + 1
        assert again.stats.checksum_failures == 1

    def test_foreign_frame_widens_maximally(self, dbdir):
        from repro.storage.framing import frame as _frame

        store = FileStableStore(dbdir)
        store.media_redo_pending = 42
        with open(_marker_path(dbdir), "wb") as handle:
            handle.write(_frame("not-the-marker-tag", 42))
        assert FileStableStore(dbdir).media_redo_pending == NULL_SI + 1


def _corrupt(path):
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size // 2)
        handle.write(b"\xff\xff\xff\xff")


def _seed_database(dbdir):
    """Build a db where narrow recovery cannot repair 'k': the put is
    durable and *installed*, and a checkpoint summarizes it away."""
    system = PersistentSystem.open(dbdir, domains=[register_kv_functions])
    kv = KVPageStore(system)
    kv.put("k", "precious")
    system.log.force()
    system.flush_all()
    system.checkpoint(truncate=False)
    page_file = None
    objects_dir = os.path.join(dbdir, "objects")
    for name in os.listdir(objects_dir):
        if name.endswith(".obj"):
            page_file = os.path.join(objects_dir, name)
    assert page_file is not None
    return page_file


class TestColdRestartMediaRecovery:
    def _crash_first_recovery(self, dbdir, monkeypatch):
        """Open attempt whose redo pass dies after the scrub widened."""
        from repro.core.recovery import RecoveryManager

        def die(self, media_redo_start=None):
            raise SimulatedCrash("process killed mid-media-redo")

        with monkeypatch.context() as patch:
            patch.setattr(RecoveryManager, "run", die)
            with pytest.raises(SimulatedCrash):
                PersistentSystem.open(dbdir, domains=[register_kv_functions])

    def test_marker_survives_process_death_and_drives_rewiden(
        self, dbdir, monkeypatch
    ):
        page_file = _seed_database(dbdir)
        _corrupt(page_file)

        # Attempt 1: the scrub quarantines the page, commits the widened
        # window to the marker, then the process dies inside redo.
        self._crash_first_recovery(dbdir, monkeypatch)
        assert os.path.exists(_marker_path(dbdir))

        # Attempt 2: a *new process* (fresh open).  The marker re-widens
        # the redo scan past the checkpoint and repeats history over the
        # quarantined page.
        system = PersistentSystem.open(dbdir, domains=[register_kv_functions])
        kv = KVPageStore(system)
        assert kv.get("k") == "precious"
        assert not os.path.exists(_marker_path(dbdir))
        assert system.store.media_redo_pending is None

    def test_supervised_open_honours_the_marker(self, dbdir, monkeypatch):
        page_file = _seed_database(dbdir)
        _corrupt(page_file)
        self._crash_first_recovery(dbdir, monkeypatch)
        system = PersistentSystem.open(
            dbdir,
            domains=[register_kv_functions],
            supervisor_config=SupervisorConfig(max_attempts=8),
        )
        assert KVPageStore(system).get("k") == "precious"
        assert not os.path.exists(_marker_path(dbdir))

    def test_without_the_marker_narrow_recovery_loses_the_page(
        self, dbdir, monkeypatch
    ):
        """Control: deleting the marker reproduces the bug the marker
        exists to fix — the restarted recovery scans from the
        checkpoint and never repairs the quarantined page."""
        page_file = _seed_database(dbdir)
        _corrupt(page_file)
        self._crash_first_recovery(dbdir, monkeypatch)
        os.unlink(_marker_path(dbdir))

        system = PersistentSystem.open(dbdir, domains=[register_kv_functions])
        assert KVPageStore(system).get("k") is None
