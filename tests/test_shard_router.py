"""Router stability: the object→shard assignment is an upgrade contract.

Each shard owns its own WAL, so the assignment of objects to shards
must be byte-identical across process restarts, Python versions and
hosts — a silent hash change would point recovery at the wrong
per-shard log.  The snapshots below are **literals**: if they ever
fail, the routing function changed, and shipping that change corrupts
every deployed sharded data directory.  Do not "fix" the literals
without a migration story.
"""

from __future__ import annotations

import pytest

from repro.shard import ShardRouter

KEYS = (
    [f"acct:{i}" for i in range(8)]
    + [f"wl:obj{i}" for i in range(8)]
    + ["alpha", "beta", "gamma", "delta", "fence", "shard", "router", "wal"]
)

# Generated once from zlib.crc32(key.encode("utf-8")) % shards.  These
# are the contract, not a regression baseline — see module docstring.
SNAPSHOT_2 = {
    "acct:0": 1, "acct:1": 1, "acct:2": 1, "acct:3": 1,
    "acct:4": 0, "acct:5": 0, "acct:6": 0, "acct:7": 0,
    "wl:obj0": 1, "wl:obj1": 1, "wl:obj2": 1, "wl:obj3": 1,
    "wl:obj4": 0, "wl:obj5": 0, "wl:obj6": 0, "wl:obj7": 0,
    "alpha": 0, "beta": 1, "gamma": 1, "delta": 1,
    "fence": 0, "shard": 0, "router": 1, "wal": 0,
}
SNAPSHOT_4 = {
    "acct:0": 1, "acct:1": 3, "acct:2": 1, "acct:3": 3,
    "acct:4": 0, "acct:5": 2, "acct:6": 0, "acct:7": 2,
    "wl:obj0": 3, "wl:obj1": 1, "wl:obj2": 3, "wl:obj3": 1,
    "wl:obj4": 2, "wl:obj5": 0, "wl:obj6": 2, "wl:obj7": 0,
    "alpha": 2, "beta": 3, "gamma": 1, "delta": 1,
    "fence": 0, "shard": 0, "router": 1, "wal": 2,
}
SNAPSHOT_8 = {
    "acct:0": 5, "acct:1": 3, "acct:2": 1, "acct:3": 7,
    "acct:4": 4, "acct:5": 2, "acct:6": 0, "acct:7": 6,
    "wl:obj0": 7, "wl:obj1": 1, "wl:obj2": 3, "wl:obj3": 5,
    "wl:obj4": 6, "wl:obj5": 0, "wl:obj6": 2, "wl:obj7": 4,
    "alpha": 2, "beta": 3, "gamma": 1, "delta": 1,
    "fence": 0, "shard": 4, "router": 5, "wal": 2,
}


class TestAssignmentSnapshot:
    @pytest.mark.parametrize(
        "shards,snapshot",
        [(2, SNAPSHOT_2), (4, SNAPSHOT_4), (8, SNAPSHOT_8)],
    )
    def test_assignment_matches_literal(self, shards, snapshot):
        assert ShardRouter(shards).assignment(KEYS) == snapshot

    def test_single_shard_owns_everything(self):
        assert set(ShardRouter(1).assignment(KEYS).values()) == {0}


class TestRouterBehavior:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_stable_across_instances(self):
        a, b = ShardRouter(4), ShardRouter(4)
        for key in KEYS:
            assert a.shard_of(key) == b.shard_of(key)

    def test_shards_of_is_the_union(self):
        router = ShardRouter(4)
        objs = ["acct:0", "acct:4", "alpha"]  # shards 1, 0, 2
        assert router.shards_of(objs) == {0, 1, 2}

    def test_partition_groups_by_owner(self):
        router = ShardRouter(2)
        buckets = router.partition(KEYS)
        assert set(buckets) <= {0, 1}
        for shard, objs in buckets.items():
            for obj in objs:
                assert router.shard_of(obj) == shard
        assert sum(len(objs) for objs in buckets.values()) == len(KEYS)

    def test_every_shard_reachable(self):
        # crc32 spread: a modest key universe touches all 8 shards.
        router = ShardRouter(8)
        owners = {router.shard_of(f"spread:{i}") for i in range(200)}
        assert owners == set(range(8))
