"""Property-based persistence testing: random workloads with random
force/purge/checkpoint patterns, then an abrupt reopen.

The reopened database must equal the oracle over the *durable prefix*
(operations whose records were forced), regardless of how much work was
volatile — hypothesis explores the force-pattern space that the single
process-kill test samples once.
"""

import os

from tests.conftest import examples
from hypothesis import given, settings, strategies as st

from repro.core.oracle import Oracle
from repro.core.operation import TOMBSTONE
from repro.domains.kvstore import register_kv_functions
from repro.persist import PersistentSystem
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)

#: Per-step actions, drawn per operation: force, purge, checkpoint.
step_actions = st.lists(
    st.tuples(st.booleans(), st.booleans(), st.integers(0, 19)),
    min_size=12,
    max_size=12,
)


@given(seed=st.integers(min_value=0, max_value=10**6), actions=step_actions)
@settings(max_examples=examples(25), deadline=None)
def test_reopen_equals_durable_prefix(tmp_path_factory, seed, actions):
    dbdir = str(tmp_path_factory.mktemp("pdb") / "db")
    system = PersistentSystem.open(
        dbdir, domains=[register_workload_functions, register_kv_functions]
    )
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=4, operations=12, object_size=24, p_delete=0.1
        ),
        seed=seed,
    )
    executed = []
    forced_count = 0
    for op, (do_force, do_purge, checkpoint_roll) in zip(
        workload.operations(), actions
    ):
        system.execute(op)
        executed.append(op)
        if do_force:
            system.log.force()
            forced_count = len(executed)
        if do_purge:
            system.purge()
            # A purge forces the WAL prefix it needs; everything up to
            # the highest forced lSI is durable.
            forced_count = max(
                forced_count,
                sum(
                    1
                    for candidate in executed
                    if system.log.is_stable(candidate.lsi)
                ),
            )
        if checkpoint_roll == 0:
            system.checkpoint(truncate=True)
            forced_count = len(executed)

    durable = executed[:forced_count]
    # Abandon the system without any cleanup and reopen from disk.
    del system
    reopened = PersistentSystem.open(
        dbdir, domains=[register_workload_functions, register_kv_functions]
    )
    oracle = Oracle(reopened.registry)
    expected = oracle.replay(durable)
    for obj, value in expected.items():
        actual = reopened.peek(obj)
        if value is TOMBSTONE:
            assert actual is None, f"{obj} should be deleted"
        else:
            assert actual == value, f"{obj} diverged after reopen"
