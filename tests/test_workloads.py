"""Tests for workload generators (repro.workloads)."""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.core.operation import OpKind
from repro.domains import AppLoggingMode, FsLoggingMode, SplitLoggingMode
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    app_pipeline_workload,
    btree_insert_workload,
    fs_batch_workload,
    kv_update_workload,
    register_workload_functions,
    transient_files_workload,
)


class TestLogicalWorkload:
    def test_deterministic_given_seed(self):
        def names(seed):
            workload = LogicalWorkload(
                LogicalWorkloadConfig(objects=4, operations=20), seed=seed
            )
            return [op.name for op in workload.operations()]

        assert names(7) == names(7)
        assert names(7) != names(8)

    def test_operation_count(self):
        workload = LogicalWorkload(
            LogicalWorkloadConfig(objects=3, operations=33)
        )
        assert len(list(workload.operations())) == 33

    def test_first_touch_is_creation(self):
        workload = LogicalWorkload(
            LogicalWorkloadConfig(objects=2, operations=10)
        )
        seen = set()
        for op in workload.operations():
            for obj in op.reads | op.writes:
                if obj not in seen:
                    # An object is created (blind physical) before any
                    # operation reads it.
                    assert obj in op.writes or obj in seen
            seen |= op.writes

    def test_mix_shapes_present(self):
        workload = LogicalWorkload(
            LogicalWorkloadConfig(objects=4, operations=200), seed=3
        )
        kinds = {op.kind for op in workload.operations()}
        assert OpKind.PHYSICAL in kinds
        assert OpKind.LOGICAL in kinds
        assert OpKind.PHYSIOLOGICAL in kinds

    def test_deletes_emitted_when_enabled(self):
        workload = LogicalWorkload(
            LogicalWorkloadConfig(objects=3, operations=100, p_delete=0.3),
            seed=5,
        )
        names = [op.name for op in workload.operations()]
        assert any(name.startswith("delete(") for name in names)

    def test_runs_on_system(self):
        system = RecoverableSystem()
        register_workload_functions(system.registry)
        workload = LogicalWorkload(
            LogicalWorkloadConfig(objects=4, operations=30, p_delete=0.1)
        )
        for op in workload.operations():
            system.execute(op)
        system.flush_all()
        system.crash()
        system.recover()
        verify_recovered(system)


class TestDomainScenarios:
    def test_app_pipeline(self):
        system = RecoverableSystem()
        app = app_pipeline_workload(system, pipelines=3, object_size=128)
        assert app.step == 3

    def test_fs_batch(self):
        system = RecoverableSystem()
        fs = fs_batch_workload(system, files=3, object_size=128)
        assert fs.read_file("f0.copy") == fs.read_file("f0")
        assert fs.read_file("f1.sorted") == bytes(
            sorted(fs.read_file("f1"))
        )

    def test_transient_files(self):
        system = RecoverableSystem()
        fs = transient_files_workload(system, files=8, keep_every=4)
        assert fs.exists("tmp0")
        assert not fs.exists("tmp1")

    def test_btree_inserts(self):
        system = RecoverableSystem()
        tree = btree_insert_workload(system, inserts=60, capacity=4)
        assert tree.check_structure() == 60

    def test_kv_updates(self):
        system = RecoverableSystem()
        store = kv_update_workload(system, updates=50, keys=10)
        assert len(store.keys()) <= 10

    @pytest.mark.parametrize(
        "mode", [AppLoggingMode.LOGICAL, AppLoggingMode.PHYSIOLOGICAL]
    )
    def test_app_modes_supported(self, mode):
        system = RecoverableSystem()
        app_pipeline_workload(
            system, pipelines=2, object_size=64, mode=mode
        )

    def test_scenarios_recover(self):
        system = RecoverableSystem()
        fs_batch_workload(system, files=2, object_size=64)
        btree_insert_workload(system, inserts=30, capacity=4)
        system.log.force()
        for _ in range(5):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
