"""Unit tests for the installation graph (repro.core.installation_graph)."""

from repro.core.history import History
from repro.core.installation_graph import InstallationGraph, WriteWritePolicy
from repro.core.operation import Operation, OpKind


def _op(name, reads, writes):
    return Operation(
        name, OpKind.LOGICAL, reads=set(reads), writes=set(writes), fn="f"
    )


def _fig1_history():
    """Figure 1(a): A reads {X,Y} writes Y; B reads {Y} writes X."""
    history = History()
    a = history.append(_op("A", ["X", "Y"], ["Y"]))
    b = history.append(_op("B", ["Y"], ["X"]))
    return history, a, b


class TestReadWriteEdges:
    def test_figure1_edge_a_to_b(self):
        history, a, b = _fig1_history()
        graph = InstallationGraph(list(history))
        # A read X which B writes: A must install before B.
        assert graph.successors(a) == {b}
        assert graph.predecessors(b) == {a}

    def test_write_read_edges_discarded(self):
        history = History()
        w = history.append(_op("w", [], ["x"]))
        r = history.append(_op("r", ["x"], ["y"]))
        graph = InstallationGraph(list(history))
        # w wrote x, r read it later: that is a write-read edge, dropped.
        assert graph.successors(w) == set()
        assert graph.predecessors(r) == set()


class TestWriteWritePolicies:
    def test_repeat_history_drops_write_write(self):
        history = History()
        first = history.append(_op("w1", [], ["x"]))
        second = history.append(_op("w2", [], ["x"]))
        graph = InstallationGraph(
            list(history), WriteWritePolicy.REPEAT_HISTORY
        )
        assert graph.successors(first) == set()

    def test_conservative_keeps_write_write(self):
        history = History()
        first = history.append(_op("w1", [], ["x"]))
        second = history.append(_op("w2", [], ["x"]))
        graph = InstallationGraph(
            list(history), WriteWritePolicy.CONSERVATIVE
        )
        assert graph.successors(first) == {second}


class TestMinimalOperations:
    def test_initially_roots_are_minimal(self):
        history, a, b = _fig1_history()
        graph = InstallationGraph(list(history))
        assert graph.minimal_operations() == [a]

    def test_excluding_installed(self):
        history, a, b = _fig1_history()
        graph = InstallationGraph(list(history))
        assert graph.minimal_operations(excluding={a}) == [b]

    def test_installation_order_is_topological(self):
        history = History()
        ops = [
            history.append(_op("a", [], ["x"])),
            history.append(_op("b", ["x"], ["y"])),
            history.append(_op("c", ["y"], ["x"])),
        ]
        graph = InstallationGraph(list(history))
        order = graph.installation_order()
        for src, dst in graph.edges():
            assert order.index(src) < order.index(dst)


class TestMust:
    def test_must_is_later_overlapping_writers(self):
        history = History()
        a = history.append(_op("a", [], ["x", "y"]))
        b = history.append(_op("b", [], ["x"]))
        c = history.append(_op("c", [], ["z"]))
        graph = InstallationGraph(list(history))
        assert graph.must(a) == {b}
        assert graph.must(b) == set()

    def test_contains_and_len(self):
        history, a, b = _fig1_history()
        graph = InstallationGraph(list(history))
        assert a in graph
        assert len(graph) == 2
