"""Smoke tests for ``python -m repro`` and the docstring examples."""

import doctest
import subprocess
import sys


def test_python_dash_m_repro_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "self-demo" in result.stdout
    assert "verified against the oracle" in result.stdout
    assert "OK" in result.stdout


def test_size_model_doctests():
    import repro.common.sizes as sizes

    failures, _tests = doctest.testmod(sizes)
    assert failures == 0
