"""The public surface: ``__all__`` stays resolvable and complete."""

from __future__ import annotations

import repro
import repro.serve as serve


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_serving_surface_exported(self):
        # The operable-daemon surface is part of the package API.
        for name in (
            "ServeDaemon", "DaemonClient", "DaemonConfig", "RetryPolicy",
            "ServingWatchdog", "WatchdogConfig",
            "LiveFireConfig", "LiveFireHarness",
            "ServeError", "BackpressureError", "DeadlineExceededError",
            "ServerUnavailableError", "ShuttingDownError",
            "ServerFailedError", "BadRequestError",
            "SystemHealth", "DegradedModeError",
        ):
            assert name in repro.__all__, name

    def test_sharding_surface_exported(self):
        # The sharded-serving surface (PR 7) is part of the package API.
        for name in (
            "ShardRouter", "ShardedSystem", "CrossShardError", "FenceAudit",
            "ShardedDaemonConfig", "ShardedServeDaemon",
            "ShardLiveFireConfig", "ShardLiveFireHarness",
        ):
            assert name in repro.__all__, name

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


class TestServeModule:
    def test_all_names_resolve(self):
        for name in serve.__all__:
            assert getattr(serve, name, None) is not None, name

    def test_errors_all_carry_codes(self):
        from repro.serve import errors
        from repro.serve.protocol import ERROR_CODES

        for name in serve.__all__:
            obj = getattr(serve, name)
            if isinstance(obj, type) and issubclass(obj, errors.ServeError):
                assert obj.code in ERROR_CODES, name
