"""The public surface: ``__all__`` stays resolvable and complete."""

from __future__ import annotations

import importlib
import re
import sys
import warnings
from pathlib import Path

import pytest

import repro
import repro.serve as serve
import repro.storage as storage


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_serving_surface_exported(self):
        # The operable-daemon surface is part of the package API.
        for name in (
            "ServeDaemon", "DaemonClient", "DaemonConfig", "RetryPolicy",
            "ServingWatchdog", "WatchdogConfig",
            "LiveFireConfig", "LiveFireHarness",
            "ServeError", "BackpressureError", "DeadlineExceededError",
            "ServerUnavailableError", "ShuttingDownError",
            "ServerFailedError", "BadRequestError",
            "SystemHealth", "DegradedModeError",
        ):
            assert name in repro.__all__, name

    def test_sharding_surface_exported(self):
        # The sharded-serving surface (PR 7) is part of the package API.
        for name in (
            "ShardRouter", "ShardedSystem", "CrossShardError", "FenceAudit",
            "ShardedDaemonConfig", "ShardedServeDaemon",
            "ShardLiveFireConfig", "ShardLiveFireHarness",
        ):
            assert name in repro.__all__, name

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_storage_surface_exported(self):
        # The pluggable-backend surface (PR 8) is part of the package
        # API: the backends, their fault-injecting variants, and the
        # registry/factory that selects among them.
        for name in (
            "StableStore", "FileStableStore", "LogStructuredStableStore",
            "FaultyStore", "FaultyFileStore", "FaultyLogStructuredStore",
            "LogStructuredInstall", "StoreBackend", "make_store",
            "store_backends", "register_store_backend",
            "recommended_cache_config",
        ):
            assert name in repro.__all__, name

    def test_replication_surface_exported(self):
        # The primary/witness surface (PR 9): the epoch sidecar, the
        # sender/witness pair, and the torture v5 harness.
        for name in (
            "EpochStore", "FencedError", "ReplicationConfig",
            "ReplicationSender", "WitnessConfig", "WitnessDaemon",
            "ReplicaLiveFireConfig", "ReplicaLiveFireHarness",
        ):
            assert name in repro.__all__, name


class TestStorageModule:
    def test_all_names_resolve(self):
        for name in storage.__all__:
            assert getattr(storage, name, None) is not None, name

    def test_builtin_backends_registered(self):
        assert storage.store_backends() == ["file", "logstore", "memory"]


class TestDeprecatedPaths:
    """Old import paths still work, warn, and have no internal callers."""

    @pytest.mark.parametrize(
        "module, names",
        [
            ("repro.persist.file_store", ["FileStableStore"]),
            ("repro.persist.faulty", ["FaultyFileStore", "FaultyFileLog"]),
        ],
    )
    def test_shim_warns_and_reexports(self, module, names):
        saved = sys.modules.pop(module, None)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                shim = importlib.import_module(module)
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            ), f"{module} did not warn"
            for name in names:
                canonical = getattr(repro.persist, name)
                assert getattr(shim, name) is canonical, name
        finally:
            if saved is not None:
                sys.modules[module] = saved

    def test_no_internal_callers(self):
        # The shims exist for external code only: nothing inside the
        # package may import through them (importing one would fire a
        # DeprecationWarning at the user from our own internals).
        package_root = Path(repro.__file__).parent
        deprecated = re.compile(
            r"^\s*(from|import)\s+repro\.persist\.(faulty|file_store)\b"
        )
        shims = {
            package_root / "persist" / "faulty.py",
            package_root / "persist" / "file_store.py",
        }
        offenders = []
        for path in package_root.rglob("*.py"):
            if path in shims:
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if deprecated.search(line):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)


class TestServeModule:
    def test_all_names_resolve(self):
        for name in serve.__all__:
            assert getattr(serve, name, None) is not None, name

    def test_errors_all_carry_codes(self):
        from repro.serve import errors
        from repro.serve.protocol import ERROR_CODES

        for name in serve.__all__:
            obj = getattr(serve, name)
            if isinstance(obj, type) and issubclass(obj, errors.ServeError):
                assert obj.code in ERROR_CODES, name
