"""Unit tests for oracle replay (repro.core.oracle)."""

from repro.core.functions import default_registry
from repro.core.operation import Operation, OpKind, TOMBSTONE, delete_object
from repro.core.oracle import Oracle


def _physical(obj, data):
    return Operation(
        f"wp({obj})",
        OpKind.PHYSICAL,
        reads=set(),
        writes={obj},
        payload={obj: data},
    )


def _copy(src, dst):
    return Operation(
        f"cp({src},{dst})",
        OpKind.LOGICAL,
        reads={src},
        writes={dst},
        fn="copy",
        params=(src, dst),
    )


class TestReplay:
    def test_replay_in_order(self):
        oracle = Oracle()
        state = oracle.replay([_physical("x", b"v"), _copy("x", "y")])
        assert state == {"x": b"v", "y": b"v"}

    def test_initial_state_respected(self):
        oracle = Oracle(initial={"x": b"seed"})
        state = oracle.replay([_copy("x", "y")])
        assert state["y"] == b"seed"

    def test_value_after(self):
        oracle = Oracle()
        ops = [_physical("x", b"1"), _physical("x", b"2")]
        assert oracle.value_after(ops, "x") == b"2"
        assert oracle.value_after(ops[:1], "x") == b"1"
        assert oracle.value_after(ops, "never") is None

    def test_trajectory_lengths_and_content(self):
        oracle = Oracle()
        ops = [_physical("x", b"1"), _copy("x", "y")]
        states = oracle.trajectory(ops)
        assert len(states) == 3
        assert states[0] == {}
        assert states[1] == {"x": b"1"}
        assert states[2] == {"x": b"1", "y": b"1"}

    def test_trajectory_states_independent(self):
        oracle = Oracle()
        states = oracle.trajectory([_physical("x", b"1"), _physical("x", b"2")])
        assert states[1]["x"] == b"1"  # not aliased to the final state


class TestLiveObjects:
    def test_deleted_objects_not_live(self):
        oracle = Oracle()
        ops = [_physical("x", b"v"), _physical("y", b"w"), delete_object("x")]
        assert oracle.live_objects(ops) == {"y"}

    def test_tombstone_value_in_replay(self):
        oracle = Oracle()
        state = oracle.replay([_physical("x", b"v"), delete_object("x")])
        assert state["x"] is TOMBSTONE
