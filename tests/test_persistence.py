"""Tests for real on-disk persistence (repro.persist): reopen cycles,
a genuine process-kill crash, torn WAL tails, and truncation."""

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro import SystemConfig
from repro.domains import KVPageStore, RecoverableFileSystem
from repro.domains.filesystem import register_filesystem_functions
from repro.domains.kvstore import register_kv_functions
from repro.persist import FileLogManager, FileStableStore, PersistentSystem


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "db")


def _open(dbdir):
    return PersistentSystem.open(
        dbdir,
        domains=[register_filesystem_functions, register_kv_functions],
    )


class TestFileStableStore:
    def test_roundtrip_across_instances(self, dbdir):
        store = FileStableStore(dbdir)
        store.write("obj:1", b"value", 7)
        again = FileStableStore(dbdir)
        version = again.peek("obj:1")
        assert version.value == b"value"
        assert version.vsi == 7

    def test_delete_removes_file(self, dbdir):
        store = FileStableStore(dbdir)
        store.write("x", b"v", 1)
        store.delete("x")
        assert not FileStableStore(dbdir).contains("x")

    def test_ids_with_special_characters(self, dbdir):
        store = FileStableStore(dbdir)
        weird = "file:dir/sub file:with spaces%and:colons"
        store.write(weird, b"v", 1)
        assert FileStableStore(dbdir).peek(weird).value == b"v"


class TestFileLogManager:
    def test_records_survive_reopen(self, dbdir):
        log = FileLogManager(dbdir)
        from repro.wal.records import CheckpointRecord

        first = log.append(CheckpointRecord({"a": 1}))
        log.force()
        log.append(CheckpointRecord({"b": 2}))  # unforced: must vanish
        again = FileLogManager(dbdir)
        lsis = [record.lsi for record in again.stable_records()]
        assert lsis == [first]
        # New appends continue past the lost lSI.
        new = again.append(CheckpointRecord({}))
        assert new > first

    def test_torn_tail_repaired(self, dbdir):
        log = FileLogManager(dbdir)
        from repro.wal.records import CheckpointRecord

        log.append(CheckpointRecord({"a": 1}))
        log.force()
        # Simulate a crash mid-force: half a frame at the end.
        with open(log.path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\x12\x34\x56\x78partial")
        again = FileLogManager(dbdir)
        assert len(list(again.stable_records())) == 1
        # The repair is durable: a third open sees a clean file.
        third = FileLogManager(dbdir)
        assert len(list(third.stable_records())) == 1

    def test_corrupt_frame_checksum_dropped(self, dbdir):
        log = FileLogManager(dbdir)
        from repro.wal.records import CheckpointRecord

        log.append(CheckpointRecord({"a": 1}))
        log.force()
        size = os.path.getsize(log.path)
        log.append(CheckpointRecord({"b": 2}))
        log.force()
        # Flip a byte inside the second frame's payload.
        with open(log.path, "r+b") as handle:
            handle.seek(size + 12)
            byte = handle.read(1)
            handle.seek(size + 12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        again = FileLogManager(dbdir)
        assert len(list(again.stable_records())) == 1

    def test_truncation_rewrites_file(self, dbdir):
        log = FileLogManager(dbdir)
        from repro.wal.records import CheckpointRecord

        lsis = [log.append(CheckpointRecord({})) for _ in range(5)]
        log.force()
        before = os.path.getsize(log.path)
        log.truncate_before(lsis[3], redo_start=lsis[3])
        assert os.path.getsize(log.path) < before
        again = FileLogManager(dbdir)
        assert [r.lsi for r in again.stable_records()] == lsis[3:]


class TestPersistentSystem:
    def test_fresh_directory(self, dbdir):
        system = _open(dbdir)
        assert system.last_report.ops_redone == 0
        fs = RecoverableFileSystem(system)
        fs.write_file("a", b"1")
        assert fs.read_file("a") == b"1"

    def test_reopen_recovers_forced_state(self, dbdir):
        system = _open(dbdir)
        fs = RecoverableFileSystem(system)
        fs.write_file("a", b"data")
        fs.sort("a", "a.sorted")
        system.log.force()
        fs.write_file("volatile", b"gone")  # never forced

        reopened = _open(dbdir)
        fs2 = RecoverableFileSystem(reopened)
        assert fs2.read_file("a") == b"data"
        assert fs2.read_file("a.sorted") == bytes(sorted(b"data"))
        assert fs2.read_file("volatile") is None

    def test_reopen_after_flush_and_truncate(self, dbdir):
        system = _open(dbdir)
        kv = KVPageStore(system, pages=4)
        for index in range(30):
            kv.put(index, f"v{index}")
        system.flush_all()
        system.checkpoint(truncate=True)

        reopened = _open(dbdir)
        assert reopened.last_report.ops_redone == 0
        kv2 = KVPageStore(reopened, pages=4)
        assert kv2.get(17) == "v17"

    def test_repeated_reopens_stable(self, dbdir):
        system = _open(dbdir)
        fs = RecoverableFileSystem(system)
        fs.write_file("a", b"x")
        system.log.force()
        for _round in range(3):
            system = _open(dbdir)
            fs = RecoverableFileSystem(system)
            assert fs.read_file("a") == b"x"


class TestPersistentBackup:
    def test_backup_restore_persists_across_reopen(self, dbdir):
        """Media recovery on a persistent database: the restored image
        must be the durable truth, surviving a further reopen."""
        from repro.kernel import BackupManager

        system = _open(dbdir)
        fs = RecoverableFileSystem(system)
        fs.write_file("a", b"backed-up")
        system.flush_all()
        manager = BackupManager(system)
        manager.take_backup()
        fs.write_file("a", b"post-backup")
        system.flush_all()
        manager.restore_latest()
        fs = RecoverableFileSystem(system)
        assert fs.read_file("a") == b"post-backup"  # log replay repaired

        reopened = _open(dbdir)
        assert RecoverableFileSystem(reopened).read_file("a") == (
            b"post-backup"
        )

    def test_flush_txn_records_roundtrip_disk(self, dbdir):
        from repro import CacheConfig, MultiObjectStrategy
        from repro.storage import FlushTransaction

        config = SystemConfig(
            cache=CacheConfig(
                multi_object_strategy=MultiObjectStrategy.ATOMIC,
                mechanism=FlushTransaction(),
            )
        )
        system = PersistentSystem.open(
            dbdir,
            config=config,
            domains=[register_filesystem_functions, register_kv_functions],
        )
        system.registry.register(
            "pairP", lambda reads: {"p1": b"1", "p2": b"2"}
        )
        from repro import Operation, OpKind

        system.execute(
            Operation(
                "pairP", OpKind.LOGICAL, reads=set(),
                writes={"p1", "p2"}, fn="pairP",
            )
        )
        system.flush_all()
        reopened = _open(dbdir)
        assert reopened.peek("p1") == b"1"
        assert reopened.peek("p2") == b"2"


KILLED_CHILD = textwrap.dedent(
    """
    import os, sys
    sys.path.insert(0, {src!r})
    from repro.persist import PersistentSystem
    from repro.domains import KVPageStore
    from repro.domains.kvstore import register_kv_functions

    system = PersistentSystem.open({db!r}, domains=[register_kv_functions])
    kv = KVPageStore(system, pages=4)
    for index in range(20):
        kv.put(index, f"v{{index}}")
    system.log.force()           # first 20 puts durable
    for _ in range(2):
        system.purge()           # some pages flushed
    for index in range(20, 40):
        kv.put(index, f"v{{index}}")   # never forced
    os._exit(1)                  # the real thing: no cleanup at all
    """
)


class TestTombstonePickle:
    def test_tombstone_singleton_survives_pickle(self):
        from repro.core.operation import TOMBSTONE

        assert pickle.loads(pickle.dumps(TOMBSTONE)) is TOMBSTONE

    def test_deletes_survive_reopen(self, dbdir):
        """A delete's WAL record carries TOMBSTONE; replay after reopen
        must still recognize the sentinel by identity."""
        system = _open(dbdir)
        fs = RecoverableFileSystem(system)
        fs.write_file("doomed", b"bye")
        fs.write_file("kept", b"hi")
        fs.delete("doomed")
        system.log.force()

        reopened = _open(dbdir)
        fs2 = RecoverableFileSystem(reopened)
        assert fs2.read_file("doomed") is None
        assert not fs2.exists("doomed")
        assert fs2.read_file("kept") == b"hi"
        # And the tombstone never leaks into the object files.
        reopened.flush_all()
        third = _open(dbdir)
        assert RecoverableFileSystem(third).read_file("doomed") is None


class TestProcessKill:
    def test_killed_process_recovered_on_reopen(self, dbdir, tmp_path):
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        script = tmp_path / "child.py"
        script.write_text(KILLED_CHILD.format(src=src, db=dbdir))
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 1, result.stderr

        system = _open(dbdir)
        kv = KVPageStore(system, pages=4)
        for index in range(20):
            assert kv.get(index) == f"v{index}", f"key {index} lost"
        for index in range(20, 40):
            assert kv.get(index) is None, f"unforced key {index} survived"
