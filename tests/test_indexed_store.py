"""Tests for the secondary-index store (repro.domains.indexed_store)."""

import random

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import IndexedKVStore, IndexLoggingMode


@pytest.fixture
def store():
    return IndexedKVStore(RecoverableSystem(), base_pages=4, index_pages=4)


class TestBasics:
    def test_put_get_find(self, store):
        store.put("k1", "red")
        store.put("k2", "red")
        store.put("k3", "blue")
        assert store.get("k1") == "red"
        assert sorted(store.find_by_value("red")) == ["k1", "k2"]
        assert store.find_by_value("green") == []

    def test_update_moves_index_entry(self, store):
        store.put("k", "old")
        store.put("k", "new")
        assert store.find_by_value("old") == []
        assert store.find_by_value("new") == ["k"]
        store.check_index_consistency()

    def test_remove_clears_index(self, store):
        store.put("k", "v")
        store.remove("k")
        assert store.get("k") is None
        assert store.find_by_value("v") == []
        store.check_index_consistency()

    def test_remove_missing_noop(self, store):
        store.remove("ghost")
        store.check_index_consistency()

    def test_keys_scan(self, store):
        for key in ("a", "b", "c"):
            store.put(key, key.upper())
        assert store.keys() == ["a", "b", "c"]

    def test_consistency_counts_entries(self, store):
        store.put("a", "x")
        store.put("b", "x")
        assert store.check_index_consistency() == 2


class TestLoggingModes:
    @pytest.mark.parametrize("mode", list(IndexLoggingMode))
    def test_modes_agree(self, mode):
        store = IndexedKVStore(RecoverableSystem(), mode=mode)
        store.put("k1", "v1")
        store.put("k1", "v2")
        store.put("k2", "v2")
        store.remove("k2")
        assert store.find_by_value("v2") == ["k1"]
        store.check_index_consistency()

    def test_logical_index_maintenance_logs_no_values(self):
        # Bulk record payloads are bytes; the size model charges string
        # params as identifiers, bytes as data values.
        big_value = b"x" * 4096
        costs = {}
        for mode in IndexLoggingMode:
            system = RecoverableSystem()
            store = IndexedKVStore(system, mode=mode)
            store.put("k", big_value)  # base put logs the value once
            store.put("k", big_value + b"!")  # update: idx remove + add
            costs[mode] = system.stats.log_value_bytes
        # Logical: only the two base puts carry values (~8 KiB).
        # Physiological: the index add for put 1, plus index remove +
        # index add for put 2, each carry the value again (~20 KiB).
        logical = costs[IndexLoggingMode.LOGICAL]
        physio = costs[IndexLoggingMode.PHYSIOLOGICAL]
        assert logical < 2 * 4096 + 64
        assert physio > logical + 3 * 4096


class TestRecovery:
    @pytest.mark.parametrize("mode", list(IndexLoggingMode))
    def test_crash_recovery_keeps_index_consistent(self, mode):
        system = RecoverableSystem()
        store = IndexedKVStore(system, base_pages=4, index_pages=4, mode=mode)
        rng = random.Random(5)
        for _round in range(80):
            key = f"k{rng.randrange(20)}"
            if rng.random() < 0.2:
                store.remove(key)
            else:
                store.put(key, f"v{rng.randrange(6)}")
        system.log.force()
        for _ in range(6):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = IndexedKVStore(
            system, base_pages=4, index_pages=4, mode=mode
        )
        recovered.check_index_consistency()

    def test_unforced_tail_keeps_base_index_agreement(self):
        """Losing an unforced suffix may lose whole put sequences, but
        never leaves the index disagreeing with the base: the logical
        index ops and the base put are re-derived from the same durable
        prefix."""
        system = RecoverableSystem()
        store = IndexedKVStore(system, base_pages=2, index_pages=2)
        store.put("a", "v1")
        system.log.force()
        store.put("a", "v2")  # lost with the crash
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = IndexedKVStore(system, base_pages=2, index_pages=2)
        assert recovered.get("a") == "v1"
        recovered.check_index_consistency()
