"""Replication units and pair integration (repro.replica).

Unit layers first — the durable epoch sidecar, the wire envelopes, the
log manager's adopt/reserve primitives — then live in-process pairs:
attach and semi-synchronous shipping, readiness, promotion, and the
epoch fence against a zombie primary.
"""

from __future__ import annotations

import time

import pytest

from repro.common.errors import WALViolationError
from repro.common.identifiers import NULL_SI
from repro.core.operation import Operation, OpKind
from repro.kernel.system import RecoverableSystem
from repro.replica import (
    INITIAL_EPOCH,
    EpochStore,
    ReplicationConfig,
    WitnessConfig,
    WitnessDaemon,
)
from repro.replica.wire import (
    batch_frame,
    decode_records,
    encode_records,
    shippable,
)
from repro.serve import (
    DaemonClient,
    DaemonConfig,
    FencedError,
    ProtocolError,
    RetryPolicy,
    ServeDaemon,
    ServeError,
    ServerUnavailableError,
)
from repro.wal.log_manager import LogManager
from repro.wal.records import (
    CheckpointRecord,
    EpochRecord,
    FenceRecord,
    InstallationRecord,
    LogRecord,
    OperationRecord,
)
from repro.workloads import register_workload_functions


def _op_record(lsi: int, obj: str = "x", value: bytes = b"v") -> OperationRecord:
    record = OperationRecord(
        Operation(
            f"op@{lsi}",
            OpKind.PHYSICAL,
            reads=set(),
            writes={obj},
            payload={obj: value},
        )
    )
    record.lsi = lsi
    record.op.lsi = lsi
    return record


# ----------------------------------------------------------------------
# the durable epoch sidecar
# ----------------------------------------------------------------------
class TestEpochStore:
    def test_memory_store_starts_at_initial(self):
        store = EpochStore()
        assert store.load() == INITIAL_EPOCH

    def test_memory_store_is_monotone(self):
        store = EpochStore()
        assert store.save(3) == 3
        assert store.save(2) == 3  # smaller numbers are ignored
        assert store.load() == 3

    def test_file_store_survives_reopen(self, tmp_path):
        root = str(tmp_path / "epoch")
        EpochStore(root).save(7)
        # A fresh instance — the reboot — must see the promoted number.
        assert EpochStore(root).load() == 7

    def test_file_store_is_monotone_across_instances(self, tmp_path):
        root = str(tmp_path / "epoch")
        EpochStore(root).save(5)
        assert EpochStore(root).save(4) == 5
        assert EpochStore(root).load() == 5

    def test_corrupt_sidecar_degrades_to_initial(self, tmp_path):
        root = str(tmp_path / "epoch")
        store = EpochStore(root)
        store.save(9)
        with open(store.path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert store.load() == INITIAL_EPOCH


# ----------------------------------------------------------------------
# the wire envelopes
# ----------------------------------------------------------------------
class TestWire:
    def test_shippable_filter(self):
        assert shippable(_op_record(1))
        assert shippable(FenceRecord("f", 0, (0,), {0: 1}))
        assert shippable(EpochRecord(2, "primary"))
        # The primary's private bookkeeping never crosses the channel.
        assert not shippable(CheckpointRecord({}))
        assert not shippable(InstallationRecord({}, {}, []))
        assert not shippable(LogRecord())

    def test_encode_decode_round_trip(self):
        records = [_op_record(4, value=b"payload"), _op_record(7)]
        decoded = decode_records(encode_records(records))
        assert [r.lsi for r in decoded] == [4, 7]
        assert decoded[0].op.payload == {"x": b"payload"}

    def test_batch_frame_shape(self):
        frame = batch_frame(2, 9, [_op_record(8)], checkpoint=True)
        assert frame["kind"] == "repl_batch"
        assert frame["epoch"] == 2
        assert frame["through"] == 9
        assert frame["checkpoint"] is True
        assert len(frame["records"]) == 1

    def test_decode_rejects_non_string(self):
        with pytest.raises(ProtocolError):
            decode_records([42])

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_records(["not base64 pickle!!"])

    def test_decode_rejects_non_record_pickle(self):
        import base64
        import pickle

        blob = base64.b64encode(pickle.dumps({"not": "a record"})).decode()
        with pytest.raises(ProtocolError):
            decode_records([blob])


# ----------------------------------------------------------------------
# the log manager's adoption primitives
# ----------------------------------------------------------------------
class TestAdoptRecords:
    def test_adopt_preserves_origin_lsis_with_gaps(self):
        log = LogManager()
        adopted = log.adopt_records([_op_record(3), _op_record(7)])
        assert adopted == 2
        assert [r.lsi for r in log.stable_records()] == [3, 7]
        assert log.stable_end_lsi() == 7

    def test_adopt_skips_duplicates_from_reship(self):
        log = LogManager()
        log.adopt_records([_op_record(3), _op_record(5)])
        # A reconnect re-ships an overlapping window; only the new
        # suffix lands.
        assert log.adopt_records([_op_record(3), _op_record(5),
                                  _op_record(8)]) == 1
        assert [r.lsi for r in log.stable_records()] == [3, 5, 8]

    def test_adopt_rejects_out_of_order_batch(self):
        log = LogManager()
        with pytest.raises(WALViolationError):
            log.adopt_records([_op_record(5), _op_record(4)])

    def test_adopt_refuses_buffered_local_appends(self):
        log = LogManager()
        log.append(LogRecord())  # volatile local append, not forced
        with pytest.raises(WALViolationError):
            log.adopt_records([_op_record(9)])

    def test_adopted_records_are_stable_immediately(self):
        # The receipt ack is a durability promise: adoption goes
        # through the forced path, nothing lingers in the buffer.
        log = LogManager()
        log.adopt_records([_op_record(2)])
        assert log.is_stable(2)

    def test_reserve_lsis_through_fences_old_history(self):
        log = LogManager()
        log.adopt_records([_op_record(4)])
        log.reserve_lsis_through(10)
        lsi = log.append(LogRecord())
        assert lsi == 11  # no lSI the old primary may have used

    def test_reserve_never_moves_backwards(self):
        log = LogManager()
        log.reserve_lsis_through(10)
        log.reserve_lsis_through(3)
        assert log.append(LogRecord()) == 11


# ----------------------------------------------------------------------
# live pairs
# ----------------------------------------------------------------------
def _start_pair(redo_every_records: int = 8):
    primary_system = RecoverableSystem()
    register_workload_functions(primary_system.registry)
    primary = ServeDaemon(
        primary_system,
        DaemonConfig(port=0, http_port=None, retry_after_ms=5),
        replication=ReplicationConfig(ack_timeout_s=2.0, retry_after_ms=5),
    ).start()
    witness_system = RecoverableSystem()
    register_workload_functions(witness_system.registry)
    witness = WitnessDaemon(
        witness_system,
        DaemonConfig(port=0, http_port=None, retry_after_ms=5),
        witness=WitnessConfig(
            primary_port=primary.port,
            redo_every_records=redo_every_records,
            reconnect_delay_s=0.02,
        ),
    ).start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if witness.attached and primary.replication.attached:
            return primary, witness
        time.sleep(0.01)
    witness.stop(graceful=False)
    primary.kill()
    raise AssertionError("witness never attached")


def _client(port: int, attempts: int = 5) -> DaemonClient:
    return DaemonClient(
        "127.0.0.1", port,
        policy=RetryPolicy(attempts=attempts, base_delay=0.01,
                           max_delay=0.05),
    )


class TestPair:
    def test_acks_wait_for_witness_watermark(self):
        primary, witness = _start_pair()
        try:
            client = _client(primary.port)
            for index in range(6):
                response = client.request(
                    "put", obj="p:x", value=f"v{index}"
                )
                assert response["ok"]
                # Semi-synchronous: by ack time the witness's durable
                # watermark covers the acked lSI.
                assert witness.system.log.is_stable(response["lsi"])
            client.close()
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_witness_refuses_data_ops_before_promotion(self):
        primary, witness = _start_pair()
        try:
            client = _client(witness.port, attempts=1)
            with pytest.raises(ServerUnavailableError):
                client.request("put", obj="w:x", value="nope")
            client.close()
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_primary_refuses_replication_frames_from_clients(self):
        primary, witness = _start_pair()
        try:
            client = _client(witness.port, attempts=1)
            with pytest.raises(ServeError) as err:
                client.request("repl_subscribe", watermark=0, epoch=1)
            assert err.value.code == "BAD_REQUEST"
            client.close()
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_readiness_tracks_attachment_and_promotion(self):
        primary, witness = _start_pair()
        try:
            status, ready = primary._ready_payload()
            assert status == 200
            assert ready["ready"] is True
            wstatus, wready = witness._ready_payload()
            # An attached, caught-up witness is "ready" as a witness.
            assert wstatus == 200
            assert wready["role"] == "witness"
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_kill_promote_serves_acked_state(self):
        primary, witness = _start_pair()
        try:
            client = _client(primary.port)
            acked = {}
            for index in range(10):
                obj = f"kp:{index % 3}"
                value = f"v{index}"
                response = client.request("put", obj=obj, value=value)
                acked[obj] = (value, response["lsi"])
            client.close()
            primary.kill()
            pclient = _client(witness.port, attempts=10)
            promote = pclient.request("promote")
            assert promote["role"] == "primary"
            assert promote["epoch"] == INITIAL_EPOCH + 1
            assert witness.promoted
            # Every acked write is visible, exactly once, at or past
            # its acked lSI.
            for obj, (value, lsi) in acked.items():
                got = pclient.request("get", obj=obj)
                assert got["value"] == value
                assert got["vsi"] >= lsi
            # And the promoted daemon accepts new writes.
            assert pclient.request("put", obj="kp:new", value="after")["ok"]
            pclient.close()
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_promotion_is_idempotent(self):
        primary, witness = _start_pair()
        try:
            primary.kill()
            client = _client(witness.port, attempts=10)
            first = client.request("promote")
            second = client.request("promote")
            assert second["epoch"] == first["epoch"]
            assert second["role"] == "primary"
            client.close()
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_zombie_primary_is_fenced(self):
        primary, witness = _start_pair()
        try:
            client = _client(primary.port)
            client.request("put", obj="z:x", value="before")
            client.close()
            # Promote while the primary is still alive: the fence ack
            # must depose it.
            pclient = _client(witness.port, attempts=10)
            pclient.request("promote")
            pclient.close()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if primary.replication.status()["fenced"]:
                    break
                time.sleep(0.01)
            assert primary.replication.status()["fenced"]
            zombie = _client(primary.port, attempts=1)
            with pytest.raises(FencedError):
                zombie.request("put", obj="z:x", value="zombie")
            zombie.close()
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_client_fails_over_from_fenced_primary(self):
        primary, witness = _start_pair()
        try:
            pclient = _client(witness.port, attempts=10)
            pclient.request("promote")
            pclient.close()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if primary.replication.status()["fenced"]:
                    break
                time.sleep(0.01)
            # A failover-aware client pointed at the fenced primary
            # rotates to the promoted witness and gets its ack there.
            client = DaemonClient(
                "127.0.0.1", primary.port,
                failover=[("127.0.0.1", witness.port)],
                policy=RetryPolicy(attempts=6, base_delay=0.01,
                                   max_delay=0.05),
            )
            response = client.request("put", obj="fo:x", value="moved")
            assert response["ok"]
            assert response["epoch"] == INITIAL_EPOCH + 1
            client.close()
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def test_unreplicated_primary_acks_without_witness(self):
        # Replication off: the single-daemon contract is unchanged.
        system = RecoverableSystem()
        register_workload_functions(system.registry)
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=None)
        ).start()
        try:
            client = _client(daemon.port)
            assert client.request("put", obj="solo", value="v")["ok"]
            client.close()
        finally:
            daemon.kill()

    def test_replicated_primary_without_witness_refuses_acks(self):
        # CP choice: rather than ack a write the witness never saw,
        # the primary answers UNAVAILABLE (retryable) until one
        # attaches.
        system = RecoverableSystem()
        register_workload_functions(system.registry)
        daemon = ServeDaemon(
            system,
            DaemonConfig(port=0, http_port=None, retry_after_ms=5),
            replication=ReplicationConfig(ack_timeout_s=0.1,
                                          retry_after_ms=5),
        ).start()
        try:
            client = _client(daemon.port, attempts=2)
            with pytest.raises(ServerUnavailableError):
                client.request("put", obj="np:x", value="v")
            client.close()
        finally:
            daemon.kill()
