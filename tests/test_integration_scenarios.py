"""Cross-module integration scenarios: multiple domains on one system,
checkpoint/truncate under load, eviction pressure, and recovery counts.
"""

import random

import pytest

from repro import (
    GeneralizedRedoTest,
    RecoverableSystem,
    SystemConfig,
    VsiRedoTest,
    verify_recovered,
)
from repro.domains import (
    ApplicationRuntime,
    KVPageStore,
    RecoverableBTree,
    RecoverableFileSystem,
)
from repro.workloads import register_workload_functions
from tests.conftest import physical


class TestMultiDomain:
    def test_domains_share_one_system(self):
        """An application reads a file, the result is indexed in a
        B-tree and mirrored in the KV store — one log, one cache, one
        recovery pass across all of it."""
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        app = ApplicationRuntime(system, "app:etl", program="checksum")
        tree = RecoverableBTree(system, capacity=4)
        kv = KVPageStore(system, pages=4)

        for index in range(5):
            fs.write_file(f"doc{index}", f"document {index}".encode() * 20)
            app.run_pipeline(
                fs.object_id(f"doc{index}"), fs.object_id(f"sum{index}")
            )
            digest = fs.read_file(f"sum{index}")
            tree.insert(index, digest)
            kv.put(f"sum{index}", digest)

        system.log.force()
        for _ in range(8):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)

        tree2 = RecoverableBTree(system, capacity=4)
        kv2 = KVPageStore(system, pages=4)
        fs2 = RecoverableFileSystem(system)
        for index in range(5):
            assert tree2.lookup(index) == fs2.read_file(f"sum{index}")
            assert kv2.get(f"sum{index}") == fs2.read_file(f"sum{index}")


class TestCheckpointUnderLoad:
    def test_periodic_checkpoint_and_truncate(self):
        system = RecoverableSystem()
        kv = KVPageStore(system, pages=4)
        for index in range(60):
            kv.put(index % 10, f"v{index}")
            if index % 10 == 9:
                system.flush_all()
                system.checkpoint(truncate=True)
        # The truncated log is much shorter than 60+ records.
        stable = list(system.log.stable_records())
        assert len(stable) < 30
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_truncation_never_loses_uninstalled(self):
        system = RecoverableSystem()
        register_workload_functions(system.registry)
        kv = KVPageStore(system, pages=2)
        kv.put("a", "1")
        system.flush_all()
        kv.put("b", "2")  # uninstalled
        system.checkpoint(truncate=True)
        system.crash()
        system.recover()
        verify_recovered(system)
        assert KVPageStore(system, pages=2).get("b") == "2"


class TestEvictionPressure:
    def test_steal_policy_roundtrip(self):
        """Evict (steal) cold objects under a small-cache discipline,
        then crash: read-through plus recovery must reconstruct all."""
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        rng = random.Random(3)
        for index in range(20):
            fs.write_file(f"f{index}", bytes([rng.randrange(256)]) * 64)
            if index % 5 == 4:
                # Make a few files clean and evict them.
                for victim in range(index - 2, index):
                    name = fs.object_id(f"f{victim}")
                    system.cache.make_clean(name)
                    system.cache.evict(name)
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)


class TestRecoveryCounts:
    def test_rsi_skips_at_least_as_much_as_vsi(self):
        """The generalized test never redoes more than the vSI test on
        the same stable image."""

        def run(test):
            system = RecoverableSystem(SystemConfig(redo_test=test))
            register_workload_functions(system.registry)
            fs = RecoverableFileSystem(system)
            for index in range(6):
                fs.write_file(f"t{index}", b"x" * 256)
                fs.sort(f"t{index}", f"s{index}")
                if index % 2 == 0:
                    fs.delete(f"t{index}")
                    fs.delete(f"s{index}")
            system.log.force()
            for _ in range(5):
                system.purge()
            system.crash()
            report = system.recover()
            verify_recovered(system)
            return report

        vsi_report = run(VsiRedoTest())
        rsi_report = run(GeneralizedRedoTest())
        assert rsi_report.ops_redone <= vsi_report.ops_redone

    def test_report_counters_consistent(self):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        fs.write_file("a", b"1")
        fs.copy("a", "b")
        system.log.force()
        system.purge()
        system.crash()
        report = system.recover()
        assert (
            report.ops_considered
            == report.ops_redone + report.skipped() + report.ops_voided
        )
