"""Distributed tracing + flight recorder: the observability tentpole.

Four clusters: trace-context wire semantics (round-trip, tolerance of
absent/malformed fields from old clients), span behavior under
exceptions inside the shard coordinator's fan-out, the flight
recorder's persistence contract (torn tails, reopen repair, self-dump
on FAILED, the /debug/flightrec endpoint), and the trace-tree
reconstruction that ``python -m repro trace`` runs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.kernel.system import RecoverableSystem, SystemHealth
from repro.obs import MetricsRegistry, dump_jsonl
from repro.obs.flightrec import FlightRecorder, load_flightrec
from repro.obs.http import ObsHTTPServer
from repro.obs.tracetree import (
    build_trace,
    collect_spans,
    list_traces,
    render_tree,
    trace_has_stages,
)
from repro.obs.tracing import TraceContext
from repro.serve import BadRequestError, DaemonClient, RetryPolicy
from repro.serve import protocol
from repro.serve.sharded import ShardedDaemonConfig, ShardedServeDaemon
from repro.shard import ShardedSystem
from repro.workloads import register_workload_functions


# ----------------------------------------------------------------------
# trace context: wire round-trip and tolerance
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_mint_child_links_parent(self):
        root = TraceContext.mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span == root.span_id
        assert child.span_id != root.span_id

    def test_wire_round_trip(self):
        ctx = TraceContext.mint()
        frame = {"kind": "put", protocol.TRACE_FIELD: ctx.to_wire()}
        parsed = protocol.request_trace(frame)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        # The wire's span is the REMOTE parent: local stages derive
        # children from it, so the tree crosses the process boundary.
        assert parsed.span_id == ctx.span_id

    def test_tags_carry_trace_and_parent(self):
        root = TraceContext.mint()
        child = root.child()
        tags = child.tags()
        assert tags["trace"] == root.trace_id
        assert tags["span"] == child.span_id
        assert tags["parent_span"] == root.span_id
        assert "parent_span" not in root.tags()

    @pytest.mark.parametrize("frame", [
        {},                                         # old client: no field
        {"trace": None},
        {"trace": "garbage"},                       # not a dict
        {"trace": 42},
        {"trace": {}},                              # missing both keys
        {"trace": {"id": "abc"}},                   # missing span
        {"trace": {"span": "abc"}},                 # missing id
        {"trace": {"id": 123, "span": "abc"}},      # non-string id
        {"trace": {"id": "", "span": "abc"}},       # empty id
    ])
    def test_malformed_or_absent_trace_parses_to_none(self, frame):
        assert protocol.request_trace(frame) is None

    def test_server_tolerates_malformed_trace_from_old_clients(self):
        sharded = ShardedSystem.build(2)
        register_workload_functions(sharded.registry)
        daemon = ShardedServeDaemon(
            sharded, ShardedDaemonConfig(port=0, http_port=None)
        ).start()
        try:
            import socket
            with socket.create_connection(("127.0.0.1", daemon.port)) as sock:
                protocol.send_frame(sock, {
                    "id": 1, "kind": "put", "obj": "x", "value": 7,
                    "trace": {"id": 123, "span": ["nope"]},
                })
                response = protocol.recv_frame(sock)
            assert response["ok"], response
        finally:
            daemon.stop(graceful=False)

    def test_replication_frames_echo_the_trace(self):
        from repro.replica import wire
        ctx = TraceContext.mint().child()
        batch = wire.batch_frame(1, 5, [], trace=ctx.to_wire())
        assert protocol.request_trace(batch).trace_id == ctx.trace_id
        ack = wire.ack_frame(5, 1, trace=batch["trace"])
        assert protocol.request_trace(ack).trace_id == ctx.trace_id
        # Old peers omit the field entirely.
        assert "trace" not in wire.batch_frame(1, 5, [])
        assert "trace" not in wire.ack_frame(5, 1)


# ----------------------------------------------------------------------
# span nesting under exceptions in the coordinator fan-out
# ----------------------------------------------------------------------
def _cross_keys(daemon):
    router = daemon.sharded.router
    a = next(f"a{i}" for i in range(64) if router.shard_of(f"a{i}") == 0)
    b = next(f"b{i}" for i in range(64) if router.shard_of(f"b{i}") == 1)
    return a, b


class TestFanOutSpansUnderExceptions:
    def test_cross_shard_failure_closes_span_with_error_outcome(self):
        sharded = ShardedSystem.build(2)
        register_workload_functions(sharded.registry)
        daemon = ShardedServeDaemon(
            sharded, ShardedDaemonConfig(port=0, http_port=None)
        ).start()
        try:
            a, b = _cross_keys(daemon)
            registry = MetricsRegistry()
            with DaemonClient("127.0.0.1", daemon.port, obs=registry,
                              policy=RetryPolicy(attempts=1)) as client:
                client.put(a, 1)
                client.put(b, 2)
                with pytest.raises(BadRequestError):
                    client.request(
                        "apply", fn="wl_not_registered",
                        reads=[a, b], writes=[a], params=[a, b],
                    )
                failed_trace = client.last_trace
                # The daemon must keep serving after the failed fan-out.
                client.put(a, 3)
            events = [e for e in daemon.obs.span_events("ack.apply_ms")
                      if e["tags"].get("trace") == failed_trace]
            assert len(events) == 1
            tags = events[0]["tags"]
            assert tags["outcome"] == "error"
            assert "wl_not_registered" in tags["error"]
            assert tags["cross"] is True
            # The rendezvous span of the same request completed cleanly.
            rendezvous = [
                e for e in daemon.obs.span_events("ack.rendezvous_ms")
                if e["tags"].get("trace") == failed_trace
            ]
            assert len(rendezvous) == 1
            assert "outcome" not in rendezvous[0]["tags"]
        finally:
            daemon.stop(graceful=False)

    def test_cross_shard_success_records_rendezvous_and_apply(self):
        sharded = ShardedSystem.build(2)
        register_workload_functions(sharded.registry)
        daemon = ShardedServeDaemon(
            sharded, ShardedDaemonConfig(port=0, http_port=None)
        ).start()
        try:
            a, b = _cross_keys(daemon)
            registry = MetricsRegistry()
            with DaemonClient("127.0.0.1", daemon.port, obs=registry,
                              policy=RetryPolicy(attempts=1)) as client:
                client.put(a, 1)
                client.put(b, 2)
                client.request("apply", fn="wl_combine",
                               reads=[a, b], writes=[b], params=[a, b])
                trace_id = client.last_trace
            spans = ([e for e in registry.span_events()]
                     + [e for e in daemon.obs.span_events()])
            traced = [e for e in spans
                      if e["tags"].get("trace") == trace_id]
            roots = build_trace(traced, trace_id)
            assert trace_has_stages(
                roots,
                ["client.apply", "ack.rendezvous_ms", "ack.apply_ms"],
            )
            assert daemon.obs.histograms["ack.rendezvous_ms"].count >= 1
        finally:
            daemon.stop(graceful=False)


# ----------------------------------------------------------------------
# flight recorder persistence
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded_and_ordered(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("tick", {"n": index})
        events = recorder.events()
        assert [e["n"] for e in events] == [6, 7, 8, 9]

    def test_non_primitive_details_are_stringified(self):
        recorder = FlightRecorder(capacity=4)
        recorder.emit("odd", payload=object(), ok=True, count=3)
        event = recorder.events()[0]
        assert isinstance(event["payload"], str)
        assert event["ok"] is True and event["count"] == 3

    def test_continuous_append_survives_no_close(self, tmp_path):
        path = str(tmp_path / "flightrec.jsonl")
        recorder = FlightRecorder(path, capacity=16)
        recorder.record("one", {"n": 1})
        recorder.record("two", {"n": 2})
        # No close(): the SIGKILL model — the flushed lines are there.
        events = load_flightrec(path)
        assert [e["kind"] for e in events] == ["one", "two"]

    def test_dump_rewrites_with_reason_trailer(self, tmp_path):
        path = str(tmp_path / "flightrec.jsonl")
        recorder = FlightRecorder(path, capacity=8)
        for index in range(20):
            recorder.record("tick", {"n": index})
        assert recorder.dump("testing") == path
        events = load_flightrec(path)
        assert events[-1]["kind"] == "flightrec.dump"
        assert events[-1]["reason"] == "testing"
        # Exactly the ring (bounded), not the whole append history.
        assert len(events) == 9

    def test_torn_tail_is_tolerated_interior_corruption_is_not(
        self, tmp_path
    ):
        path = str(tmp_path / "flightrec.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "a"}) + "\n")
            handle.write('{"kind": "torn-mid-wr')
        events = load_flightrec(path)
        assert [e["kind"] for e in events] == ["a"]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind": garbage}\n')
            handle.write(json.dumps({"kind": "b"}) + "\n")
        with pytest.raises(ValueError):
            load_flightrec(path)

    def test_reopen_repairs_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "flightrec.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "before-kill"}) + "\n")
            handle.write('{"kind": "torn')
        recorder = FlightRecorder(path, capacity=8)
        recorder.record("after-restart", {})
        # The torn fragment is gone and the new append did not fuse
        # with it into a malformed interior line.
        kinds = [e["kind"] for e in load_flightrec(path)]
        assert kinds == ["before-kill", "after-restart"]
        # A dump on close then bounds the file to the ring.
        recorder.close()
        assert load_flightrec(path)[-1]["kind"] == "flightrec.dump"

    def test_self_dump_on_failed_health_transition(self, tmp_path):
        path = str(tmp_path / "flightrec.jsonl")
        recorder = FlightRecorder(path, capacity=8)
        recorder.emit("health.transition",
                      **{"from": "serving", "to": "failed"})
        events = load_flightrec(path)
        assert events[-1]["kind"] == "flightrec.dump"
        assert events[-1]["reason"] == "failed"

    def test_system_health_transitions_reach_a_subscribed_recorder(self):
        recorder = FlightRecorder(capacity=32)
        system = RecoverableSystem()
        system.attach_metrics(MetricsRegistry())
        system.obs.subscribe(recorder)
        system.crash()
        system.recover()
        transitions = [e for e in recorder.events()
                       if e["kind"] == "health.transition"]
        assert transitions, "health property did not emit transitions"
        assert transitions[-1]["to"] == SystemHealth.HEALTHY.value
        assert all("from" in e for e in transitions)

    def test_debug_flightrec_endpoint(self, tmp_path):
        path = str(tmp_path / "flightrec.jsonl")
        recorder = FlightRecorder(path, capacity=8)
        recorder.record("probe", {"n": 1})
        server = ObsHTTPServer(
            lambda: None,
            lambda: (200, {"health": "healthy"}),
            port=0,
            flightrec_provider=lambda: recorder,
        )
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(base + "/debug/flightrec") as resp:
                doc = json.loads(resp.read())
            assert doc["dumped"] is None
            assert [e["kind"] for e in doc["events"]] == ["probe"]
            with urllib.request.urlopen(
                base + "/debug/flightrec?dump=1"
            ) as resp:
                doc = json.loads(resp.read())
            assert doc["dumped"] == path
            assert load_flightrec(path)[-1]["reason"] == "endpoint"
        finally:
            server.stop()

    def test_debug_flightrec_404_without_recorder(self):
        server = ObsHTTPServer(
            lambda: None, lambda: (200, {"health": "healthy"}), port=0
        )
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/debug/flightrec"
                )
            assert err.value.code == 404
        finally:
            server.stop()


# ----------------------------------------------------------------------
# trace-tree reconstruction
# ----------------------------------------------------------------------
def _span(name, trace, span, parent=None, seconds=0.001, ts=0.0, **tags):
    tags = dict(tags)
    tags.update({"trace": trace, "span": span})
    if parent is not None:
        tags["parent_span"] = parent
    return {"name": name, "seconds": seconds, "ts": ts, "tags": tags}


class TestTraceTree:
    def test_forest_when_a_parent_export_is_missing(self):
        spans = [
            _span("client.put", "t1", "s1", ts=1.0, seconds=0.01),
            _span("ack.queue_ms", "t1", "s2", parent="s1", ts=1.001),
            _span("witness.adopt_ms", "t1", "s9", parent="missing",
                  ts=1.002),
        ]
        roots = build_trace(spans, "t1")
        assert len(roots) == 2  # orphan becomes a second root
        assert not trace_has_stages(roots, ["client.put"])

    def test_complete_tree_and_attribution(self):
        spans = [
            _span("client.put", "t2", "s1", ts=1.0, seconds=0.010),
            _span("ack.queue_ms", "t2", "s2", parent="s1", ts=1.001,
                  seconds=0.002),
            _span("ack.force_ms", "t2", "s3", parent="s1", ts=1.002,
                  seconds=0.003),
        ]
        roots = build_trace(spans, "t2")
        assert len(roots) == 1
        assert trace_has_stages(
            roots, ["client.put", "ack.queue_ms", "ack.force_ms"]
        )
        root = roots[0]
        assert [c.name for c in root.children] == [
            "ack.queue_ms", "ack.force_ms"
        ]
        assert root.self_ms() == pytest.approx(5.0)
        rendered = render_tree(roots, "t2")
        assert "client.put" in rendered
        assert "stage attribution" in rendered

    def test_list_traces_newest_first(self):
        spans = [
            _span("client.put", "told", "s1", ts=1.0),
            _span("client.put", "tnew", "s2", ts=9.0),
        ]
        assert [s["trace"] for s in list_traces(spans)] == ["tnew", "told"]

    def test_collect_spans_reads_exports_and_drops_untraced(self, tmp_path):
        registry = MetricsRegistry()
        ctx = TraceContext.mint()
        with registry.span("client.put", **ctx.tags()):
            pass
        with registry.span("internal.phase"):
            pass
        path = str(tmp_path / "out.jsonl")
        dump_jsonl(registry, path)
        spans = collect_spans([path])
        assert [s["name"] for s in spans] == ["client.put"]
        assert spans[0]["_source"] == path

    def test_cli_expect_verdicts(self, tmp_path, capsys):
        from repro.obs import tracetree
        registry = MetricsRegistry()
        ctx = TraceContext.mint()
        with registry.span("client.put", **ctx.tags()):
            with registry.span("ack.force_ms", **ctx.child().tags()):
                pass
        path = str(tmp_path / "out.jsonl")
        dump_jsonl(registry, path)
        assert tracetree.main(
            [path], expect=["client.put", "ack.force_ms"]
        ) == 0
        assert "OK" in capsys.readouterr().out
        assert tracetree.main(
            [path], expect=["witness.ack_ms"]
        ) == 1

    def test_main_cli_trace_missing_file(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main
        missing = str(tmp_path / "nope.jsonl")
        assert cli_main(["trace", missing]) != 0
        capsys.readouterr()

    def test_main_cli_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main
        registry = MetricsRegistry()
        ctx = TraceContext.mint()
        with registry.span("client.put", **ctx.tags()):
            pass
        path = str(tmp_path / "out.jsonl")
        dump_jsonl(registry, path)
        assert cli_main(["trace", path, "--list"]) == 0
        assert ctx.trace_id in capsys.readouterr().out
        assert cli_main(["trace", path, "--expect", "client.put"]) == 0
        capsys.readouterr()


# ----------------------------------------------------------------------
# the documented-name audit: docs/API.md is the canonical registry
# ----------------------------------------------------------------------
def _documented_patterns():
    """Regexes for every backticked name in API.md's telemetry section."""
    import re
    text = (Path(__file__).resolve().parent.parent
            / "docs" / "API.md").read_text(encoding="utf-8")
    match = re.search(
        r"^## Telemetry names.*?(?=^## |\Z)", text, re.M | re.S
    )
    assert match, "API.md lost its '## Telemetry names' section"
    patterns = []
    for token in re.findall(r"`([^`]+)`", match.group(0)):
        # Placeholders like <kind> / <k> match any non-empty segment(s).
        escaped = re.escape(token)
        # re.escape may or may not escape <> depending on the Python
        # version; accept either form.
        pattern = re.sub(r"\\?<[^>]*?\\?>", r".+", escaped)
        patterns.append(re.compile(pattern + r"\Z"))
    return patterns


def _registered_names(registry) -> set:
    snap = registry.snapshot()
    names = set(snap["counters"]) | set(snap["gauges"])
    names |= set(snap["histograms"])
    names |= {event["name"] for event in registry.span_events()}
    return names


class TestTelemetryNameAudit:
    def test_every_registered_name_is_documented(self):
        names = set()

        # Scenario 1: supervised recovery on an instrumented kernel.
        system = RecoverableSystem()
        registry = system.attach_metrics(MetricsRegistry())
        from repro import RecoverySupervisor, identity_write
        system.execute(identity_write("k", 1))
        system.crash()
        RecoverySupervisor(system).run()
        names |= _registered_names(registry)

        # Scenario 2: a replicated pair with a traced client and one
        # rejection (covers serve.*, ack.*, repl.*, witness.*).
        from repro.replica import (
            ReplicationConfig, WitnessConfig, WitnessDaemon,
        )
        from repro.serve import DaemonConfig, ServeDaemon
        primary_system = RecoverableSystem()
        register_workload_functions(primary_system.registry)
        primary_system.attach_metrics(MetricsRegistry())
        primary = ServeDaemon(
            primary_system,
            DaemonConfig(port=0, http_port=None, retry_after_ms=5),
            replication=ReplicationConfig(ack_timeout_s=5.0),
        ).start()
        witness_system = RecoverableSystem()
        register_workload_functions(witness_system.registry)
        witness_system.attach_metrics(MetricsRegistry())
        witness = WitnessDaemon(
            witness_system,
            DaemonConfig(port=0, http_port=None, retry_after_ms=5),
            witness=WitnessConfig(
                primary_port=primary.port, reconnect_delay_s=0.02
            ),
        ).start()
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if witness.attached and primary.replication.attached:
                    break
                time.sleep(0.01)
            client_registry = MetricsRegistry()
            with DaemonClient("127.0.0.1", primary.port,
                              obs=client_registry,
                              policy=RetryPolicy(attempts=1)) as client:
                client.put("audit", 1)
                client.get("audit")
                with pytest.raises(BadRequestError):
                    client.request("put", value=1)  # no obj
        finally:
            witness.stop(graceful=False)
            primary.stop()
        names |= _registered_names(client_registry)
        names |= _registered_names(primary_system.obs)
        names |= _registered_names(witness_system.obs)

        # Scenario 3: sharded daemon with chaos + a cross-shard apply.
        sharded = ShardedSystem.build(2)
        register_workload_functions(sharded.registry)
        daemon = ShardedServeDaemon(
            sharded,
            ShardedDaemonConfig(port=0, http_port=None, allow_chaos=True),
        ).start()
        try:
            a, b = _cross_keys(daemon)
            with DaemonClient("127.0.0.1", daemon.port,
                              obs=MetricsRegistry()) as client:
                client.put(a, 1)
                client.put(b, 2)
                client.request("apply", fn="wl_combine", reads=[a, b],
                               writes=[b], params=[a, b])
                client.request("kill_shard", shard=1)
                client.request("revive_shard", shard=1)
            names |= _registered_names(daemon.obs)
            for shard_system in daemon.sharded.systems:
                names |= _registered_names(shard_system.obs)
        finally:
            daemon.stop(graceful=False)

        patterns = _documented_patterns()
        undocumented = sorted(
            name for name in names
            if not any(p.match(name) for p in patterns)
        )
        assert not undocumented, (
            "registered telemetry names missing from docs/API.md "
            f"'Telemetry names' section: {undocumented}"
        )


# ----------------------------------------------------------------------
# ms-span histogram convention
# ----------------------------------------------------------------------
class TestMsSpans:
    def test_ms_spans_feed_ms_buckets(self):
        registry = MetricsRegistry()
        with registry.span("ack.force_ms"):
            pass
        registry.record_span("ack.queue_ms", 0.5)
        force = registry.histograms["ack.force_ms"]
        queue = registry.histograms["ack.queue_ms"]
        assert queue.count == 1
        # 0.5 s observed as 500 ms, not 0.5 of anything else.
        assert queue.total == pytest.approx(500.0)
        assert force.boundaries == queue.boundaries
        # Span *events* keep seconds for cross-tool consistency.
        event = registry.span_events("ack.queue_ms")[0]
        assert event["seconds"] == pytest.approx(0.5)

    def test_plain_spans_keep_second_buckets(self):
        registry = MetricsRegistry()
        with registry.span("recovery.attempt"):
            pass
        assert registry.histograms["recovery.attempt"].boundaries[0] < 0.01
