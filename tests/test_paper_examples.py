"""End-to-end walkthroughs of the paper's worked examples.

Each test narrates one of the paper's figures or inline examples
through the full system (log + cache + store + recovery), asserting the
behaviour the text claims.
"""

import pytest

from repro import (
    Operation,
    OpKind,
    RecoverableSystem,
    verify_recovered,
)
from tests.conftest import physical


def _register_fig1(system):
    system.registry.register(
        "f", lambda reads, x, y: {y: (reads[x] or b"") + (reads[y] or b"")}
    )
    system.registry.register(
        "g", lambda reads, y, x: {x: bytes(reversed(reads[y] or b""))}
    )


def _op_a():
    return Operation(
        "A", OpKind.LOGICAL, reads={"X", "Y"}, writes={"Y"}, fn="f",
        params=("X", "Y"),
    )


def _op_b():
    return Operation(
        "B", OpKind.LOGICAL, reads={"Y"}, writes={"X"}, fn="g",
        params=("Y", "X"),
    )


class TestFigure1:
    """Logical operations A (Y <- f(X,Y)) and B (X <- g(Y))."""

    def test_logical_records_carry_no_values(self):
        system = RecoverableSystem()
        _register_fig1(system)
        system.execute(physical("X", b"x" * 1024))
        system.execute(physical("Y", b"y" * 1024))
        before = system.stats.log_value_bytes
        system.execute(_op_a())
        system.execute(_op_b())
        assert system.stats.log_value_bytes == before

    def test_flush_dependency_y_before_x(self):
        """'once A is executed, a flush order dependency exists to
        ensure that A's result Y is flushed prior to any subsequent
        change to X being flushed.'"""
        system = RecoverableSystem()
        _register_fig1(system)
        system.execute(physical("X", b"x0"))
        system.execute(physical("Y", b"y0"))
        system.execute(_op_a())
        system.execute(_op_b())
        # First purge that flushes anything must flush Y before X's new
        # value reaches the store.
        system.purge()
        stored_y = system.store.peek("Y").value
        stored_x = system.store.peek("X").value
        if stored_x not in (None, b"x0"):
            assert stored_y == b"x0y0", "X updated before Y flushed"

    def test_crash_replay_reads_stable_sources(self):
        """Recovery of B re-reads Y from the stable database — no
        logged values involved."""
        system = RecoverableSystem()
        _register_fig1(system)
        system.execute(physical("X", b"x0"))
        system.execute(physical("Y", b"y0"))
        system.execute(_op_a())
        system.execute(_op_b())
        system.log.force()
        system.purge()  # flush Y (A's node)
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.read("X") == bytes(reversed(b"x0y0"))


class TestSection1Examples:
    def test_file_copy_shape(self):
        """'An operation that copies file X to file Y is in the form of
        operation B' — and logs only identifiers."""
        from repro.domains import RecoverableFileSystem

        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        fs.write_file("X", b"data" * 1000)
        before = system.stats.log_value_bytes
        op = fs.copy("X", "Y")
        assert op.reads == {"file:X"}
        assert op.writes == {"file:Y"}
        assert system.stats.log_value_bytes == before

    def test_btree_split_avoids_logging_new_page(self):
        from repro.domains import RecoverableBTree, SplitLoggingMode

        logged = {}
        for mode in SplitLoggingMode:
            system = RecoverableSystem()
            tree = RecoverableBTree(system, capacity=4, mode=mode)
            for key in range(5):  # forces one split
                tree.insert(key, b"v" * 100)
            logged[mode] = system.stats.log_value_bytes
        assert logged[SplitLoggingMode.LOGICAL] < logged[
            SplitLoggingMode.PHYSIOLOGICAL
        ]


class TestSection4Narrative:
    """The a/b/c cycle, dissolved by identity writes, then installed
    one object at a time."""

    def test_full_flow(self):
        system = RecoverableSystem()  # identity-write strategy
        _register_fig1(system)
        system.registry.register(
            "h", lambda reads, y: {y: (reads[y] or b"") + b"!"}
        )
        system.execute(physical("X", b"x0"))
        system.execute(physical("Y", b"y0"))
        system.execute(_op_a())
        system.execute(_op_b())
        system.execute(
            Operation(
                "c", OpKind.LOGICAL, reads={"Y"}, writes={"Y"}, fn="h",
                params=("Y",),
            )
        )
        # The cycle collapsed into a multi-object flush set; draining
        # the cache must nonetheless never perform a multi-object
        # atomic flush.
        system.flush_all()
        assert system.stats.atomic_flushes == 0
        assert system.stats.identity_writes >= 1
        # And the result is still crash-consistent.
        system.crash()
        system.recover()
        verify_recovered(system)


class TestSection5Narrative:
    """Transient objects: deleted files' operations are never redone."""

    def test_deleted_files_not_recovered(self):
        from repro.domains import RecoverableFileSystem

        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        fs.write_file("temp", b"scratch" * 100)
        fs.sort("temp", "temp.out")
        fs.delete("temp")
        fs.delete("temp.out")
        fs.write_file("keep", b"keep-me")
        system.flush_all()
        # Installation records are logged lazily; a checkpoint forces
        # them (and snapshots the now-empty dirty object table), which
        # is what makes the skip durable.  Without it, recovery safely
        # re-runs the tail — "only the installation(s) just before a
        # crash may be missed".
        system.checkpoint()
        system.crash()
        report = system.recover()
        verify_recovered(system)
        # Everything was installed before the crash; the generalized
        # test redoes nothing — in particular not the expensive sort.
        assert report.ops_redone == 0
        fs2 = RecoverableFileSystem(system)
        assert not fs2.exists("temp")
        assert fs2.read_file("keep") == b"keep-me"
