"""Tests for benchmark reporting helpers (repro.analysis.tables) and
IOStats bookkeeping (repro.storage.stats)."""

import pytest

from repro.analysis import Table, format_bytes, ratio
from repro.storage import IOStats


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"

    def test_gib_cap(self):
        assert format_bytes(5 * 1024**3) == "5.0 GiB"


class TestRatio:
    def test_simple(self):
        assert ratio(10, 4) == "2.50x"

    def test_zero_denominator(self):
        assert ratio(1, 0) == "n/a"


class TestTable:
    def test_render_alignment(self):
        table = Table("Title", ["col", "value"])
        table.add_row("a", 1)
        table.add_row("long-name", 20)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "col" in lines[2]
        assert "long-name" in text

    def test_cell_count_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="expected 2 cells"):
            table.add_row("only-one")

    def test_print_smoke(self, capsys):
        table = Table("t", ["a"])
        table.add_row(1)
        table.print()
        assert "t" in capsys.readouterr().out


class TestIOStats:
    def test_snapshot_and_diff(self):
        stats = IOStats()
        stats.object_writes = 2
        before = stats.snapshot()
        stats.object_writes = 7
        stats.log_forces = 1
        delta = stats.diff(before)
        assert delta["object_writes"] == 5
        assert delta["log_forces"] == 1

    def test_bump_extra_counters(self):
        stats = IOStats()
        stats.bump("custom")
        stats.bump("custom", 4)
        assert stats.snapshot()["custom"] == 5

    def test_total_device_writes(self):
        stats = IOStats()
        stats.object_writes = 3
        stats.shadow_writes = 2
        stats.pointer_swings = 1
        assert stats.total_device_writes() == 6
