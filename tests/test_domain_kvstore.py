"""Tests for the physiological KV page store (repro.domains.kvstore)."""

import pytest

from repro import GraphMode, RecoverableSystem, verify_recovered
from repro.domains import KVPageStore


@pytest.fixture
def kv():
    return KVPageStore(RecoverableSystem(), pages=4)


class TestBasics:
    def test_put_get(self, kv):
        kv.put("k", "v")
        assert kv.get("k") == "v"
        assert kv.get("missing") is None

    def test_overwrite(self, kv):
        kv.put("k", "one")
        kv.put("k", "two")
        assert kv.get("k") == "two"

    def test_remove(self, kv):
        kv.put("k", "v")
        kv.remove("k")
        assert kv.get("k") is None

    def test_remove_missing_is_noop(self, kv):
        kv.remove("ghost")

    def test_keys_scan(self, kv):
        for key in ("a", "b", "c"):
            kv.put(key, key)
        assert kv.keys() == ["a", "b", "c"]

    def test_page_partitioning_deterministic(self, kv):
        assert kv.page_of("k") == kv.page_of("k")

    def test_pages_validation(self):
        with pytest.raises(ValueError, match="at least one page"):
            KVPageStore(RecoverableSystem(), pages=0)


class TestDegenerateWriteGraph:
    def test_all_flush_sets_singletons(self):
        """Physiological ops: rW degenerates to one node per page with
        no flush-order edges — the paper's classic-database case."""
        system = RecoverableSystem()
        kv = KVPageStore(system, pages=8)
        for index in range(40):
            kv.put(index, index)
        graph = system.cache.engine
        assert all(len(n.vars) == 1 for n in graph.nodes)
        assert list(graph.edges()) == []
        # Every node is immediately flushable, in any order.
        assert len(graph.minimal_nodes()) == len(graph.nodes)


class TestRecovery:
    def test_crash_recover(self):
        system = RecoverableSystem()
        kv = KVPageStore(system, pages=4)
        for index in range(50):
            kv.put(index, f"v{index}")
        kv.remove(10)
        system.log.force()
        for _ in range(3):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = KVPageStore(system, pages=4)
        assert recovered.get(7) == "v7"
        assert recovered.get(10) is None

    def test_w_and_rw_agree(self):
        from repro import CacheConfig, MultiObjectStrategy, SystemConfig
        from repro.storage import ShadowInstall

        states = {}
        for graph_mode in (GraphMode.RW, GraphMode.W):
            config = SystemConfig(
                cache=CacheConfig(
                    graph_mode=graph_mode,
                    multi_object_strategy=MultiObjectStrategy.ATOMIC,
                    mechanism=ShadowInstall(),
                )
            )
            system = RecoverableSystem(config)
            kv = KVPageStore(system, pages=4)
            for index in range(30):
                kv.put(index, f"v{index}")
            system.flush_all()
            system.crash()
            system.recover()
            verify_recovered(system)
            states[graph_mode] = system.stable_values()
        assert states[GraphMode.RW] == states[GraphMode.W]
