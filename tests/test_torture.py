"""Tests for the recovery torture harness (repro.kernel.torture)."""

from repro.cache.config import CacheConfig
from repro.cache.policies import PeelHottest
from repro.kernel.torture import (
    SWEEP_KINDS,
    TortureConfig,
    TortureHarness,
    TortureOutcome,
    TortureReport,
)
from repro.storage.faults import FaultKind


def _small() -> TortureConfig:
    return TortureConfig(operations=12)


class TestSweep:
    def test_full_sweep_survives(self):
        harness = TortureHarness(_small())
        report = harness.sweep()
        assert report.ok, [f.error for f in report.failures()]
        assert report.points == harness.count_points()
        assert len(report.outcomes) == report.points * len(SWEEP_KINDS)

    def test_sweep_actually_injects(self):
        report = TortureHarness(_small()).sweep()
        assert report.totals["faults_injected"] > 0
        assert report.totals["fault_retries"] > 0

    def test_point_numbering_stable_across_runs(self):
        harness = TortureHarness(_small())
        assert harness.count_points() == harness.count_points()

    def test_sweep_under_capacity_pressure(self):
        """A tiny cache forces store reads and constant eviction, so the
        sweep covers the read-side fault points too."""
        harness = TortureHarness(
            TortureConfig(
                operations=12,
                cache_factory=lambda: CacheConfig(
                    capacity=4, victim_policy=PeelHottest()
                ),
            )
        )
        report = harness.sweep()
        assert report.ok, [f.error for f in report.failures()]

    def test_must_survive_envelope_excludes_fsync_lie(self):
        assert FaultKind.FSYNC_LIE not in SWEEP_KINDS
        assert set(SWEEP_KINDS) == {
            FaultKind.TORN,
            FaultKind.TRANSIENT,
            FaultKind.CORRUPT,
        }


class TestFuzz:
    def test_fuzz_survives(self):
        report = TortureHarness(_small()).fuzz(runs=40, seed=11)
        assert report.ok, [f.error for f in report.failures()]
        assert len(report.outcomes) == 40

    def test_fuzz_outcomes_carry_their_seed(self):
        report = TortureHarness(_small()).fuzz(runs=3, seed=100)
        assert [o.seed for o in report.outcomes] == [100, 101, 102]

    def test_fuzz_reproducible_from_seed(self):
        """Run i of a campaign equals a one-run campaign at seed+i:
        the property that makes any failing schedule replayable."""
        harness = TortureHarness(_small())
        campaign = harness.fuzz(runs=5, seed=30)
        for index, outcome in enumerate(campaign.outcomes):
            replay = harness.fuzz(runs=1, seed=30 + index)
            assert replay.outcomes[0].trace == outcome.trace
            assert replay.outcomes[0].ok == outcome.ok


class TestReport:
    def test_summary_mentions_failures(self):
        report = TortureReport(mode="sweep", points=2)
        report.outcomes.append(
            TortureOutcome("torn@1!", False, error="boom")
        )
        assert "1 FAILED" in report.summary()
        assert not report.ok

    def test_summary_ok(self):
        report = TortureReport(mode="fuzz")
        assert report.ok
        assert "OK" in report.summary()
