"""The serving daemon: admission gating, deadlines, shutdown, watchdog.

Every test runs a real daemon on an ephemeral port and talks to it
over real sockets; the system underneath is the in-memory kernel, so
crashes and recoveries are driven deterministically.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.common.errors import DegradedModeError, SimulatedCrash
from repro.kernel.system import RecoverableSystem, SystemHealth
from repro.serve import (
    BackpressureError,
    BadRequestError,
    DaemonClient,
    DaemonConfig,
    DeadlineExceededError,
    RetryPolicy,
    ServeDaemon,
    ServerFailedError,
    ShuttingDownError,
)
from repro.workloads import register_workload_functions

ONE_SHOT = RetryPolicy(attempts=1)


@pytest.fixture
def served():
    """A started daemon over a fresh system, torn down after the test."""
    system = RecoverableSystem()
    register_workload_functions(system.registry)
    daemon = ServeDaemon(
        system, DaemonConfig(port=0, http_port=None, max_queue=4)
    ).start()
    try:
        yield daemon
    finally:
        daemon.stop(graceful=False)


def client_for(daemon, **kw):
    kw.setdefault("policy", RetryPolicy(attempts=1))
    return DaemonClient("127.0.0.1", daemon.port, **kw)


class TestRoundTrips:
    def test_put_get_delete(self, served):
        client = client_for(served)
        lsi = client.put("user:1", b"alice")
        assert client.get("user:1") == (b"alice", lsi)
        del_lsi = client.delete("user:1")
        assert del_lsi > lsi
        value, _vsi = client.get("user:1")
        assert value is None
        client.close()

    def test_apply_logical_operation(self, served):
        client = client_for(served)
        client.put("src", b"payload")
        response = client.apply(
            "wl_derive", reads=["src"], writes=["dst"],
            params=["src", "dst"],
        )
        assert response["ok"]
        written = response["writes"]["dst"]
        value, vsi = client.get("dst")
        assert value == __import__("base64").b64decode(
            written["__bytes__"]
        )
        assert vsi == response["lsi"]
        client.close()

    def test_acks_are_forced(self, served):
        client = client_for(served)
        lsi = client.put("x", b"v")
        assert served.system.log.is_stable(lsi)
        assert served.system.log.buffered_lsis() == []
        client.close()

    def test_ping_reports_version_and_health(self, served):
        client = client_for(served)
        response = client.ping()
        from repro import __version__

        assert response["version"] == __version__
        assert response["health"] == "healthy"
        client.close()

    def test_stats_exposes_serve_counters(self, served):
        client = client_for(served)
        client.put("x", b"v")
        stats = client.stats()
        assert stats["counters"]["serve.acked_writes"] >= 1
        client.close()

    def test_unknown_kind_rejected(self, served):
        client = client_for(served)
        with pytest.raises(BadRequestError):
            client.request("explode")
        client.close()

    def test_bad_deadline_rejected(self, served):
        client = client_for(served)
        with pytest.raises(BadRequestError):
            client.request("put", obj="x", value="v",
                           deadline_ms="not-a-number")
        client.close()

    def test_missing_obj_rejected(self, served):
        client = client_for(served)
        with pytest.raises(BadRequestError):
            client.request("get")
        client.close()


class TestHealthGating:
    def test_degraded_rejects_writes_serves_reads(self, served):
        client = client_for(served)
        client.put("keep", b"safe")
        served.system.enter_degraded({"gone"})
        with pytest.raises(DegradedModeError):
            client.put("keep", b"more")
        value, _vsi = client.get("keep")
        assert value == b"safe"
        # Reads of the lost object raise the same structured condition.
        with pytest.raises(DegradedModeError):
            client.get("gone")
        client.close()

    def test_failed_refuses_everything(self, served):
        client = client_for(served)
        served.system.mark_failed()
        with pytest.raises(ServerFailedError):
            client.put("x", b"v")
        with pytest.raises(ServerFailedError):
            client.get("x")
        # Liveness requests still answer (bypass the kernel).
        assert client.ping()["health"] == "failed"
        assert client.health()["health"] == "failed"
        client.close()

    def test_draining_rejects_new_work(self, served):
        served._draining.set()
        client = client_for(served)
        with pytest.raises(ShuttingDownError):
            client.put("x", b"v")
        # Liveness stays answerable mid-drain.
        assert client.ping()["ok"]
        client.close()


class _StalledApply:
    """Blocks the apply loop inside system.execute until released."""

    def __init__(self, system):
        self.entered = threading.Event()
        self.release = threading.Event()
        self._original = system.execute
        system.execute = self._stalled

    def _stalled(self, op):
        self.entered.set()
        assert self.release.wait(timeout=10.0)
        return self._original(op)


class TestBackpressureAndDeadlines:
    def test_full_queue_answers_backpressure(self):
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=None, max_queue=1,
                                 retry_after_ms=7)
        ).start()
        stall = _StalledApply(system)
        try:
            blocked = client_for(daemon)
            result = {}
            worker = threading.Thread(
                target=lambda: result.update(
                    lsi=blocked.put("a", b"1")
                )
            )
            worker.start()
            assert stall.entered.wait(timeout=5.0)
            # Apply is busy with "a"; this one fills the queue...
            queued = client_for(daemon)
            queued_result = {}
            queued_worker = threading.Thread(
                target=lambda: queued_result.update(
                    lsi=queued.put("b", b"2")
                )
            )
            queued_worker.start()
            deadline = time.monotonic() + 5.0
            while daemon._queue.empty() and time.monotonic() < deadline:
                time.sleep(0.005)
            # ...and the next arrival bounces with the configured hint.
            overflow = client_for(daemon)
            with pytest.raises(BackpressureError) as excinfo:
                overflow.put("c", b"3")
            assert excinfo.value.retry_after_ms == 7
            assert excinfo.value.retryable
            stall.release.set()
            worker.join(timeout=10.0)
            queued_worker.join(timeout=10.0)
            assert "lsi" in result and "lsi" in queued_result
            for c in (blocked, queued, overflow):
                c.close()
        finally:
            stall.release.set()
            daemon.stop(graceful=False)

    def test_deadline_expires_in_queue(self):
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=None, max_queue=4)
        ).start()
        stall = _StalledApply(system)
        try:
            blocked = client_for(daemon)
            worker = threading.Thread(
                target=lambda: blocked.put("a", b"1")
            )
            worker.start()
            assert stall.entered.wait(timeout=5.0)
            doomed = client_for(daemon)
            doomed_error = []
            doomed_worker = threading.Thread(
                target=lambda: doomed_error.append(
                    pytest.raises(
                        DeadlineExceededError,
                        doomed.put, "b", b"2", deadline_ms=1,
                    )
                )
            )
            doomed_worker.start()
            time.sleep(0.05)  # let the 1ms budget expire in the queue
            stall.release.set()
            worker.join(timeout=10.0)
            doomed_worker.join(timeout=10.0)
            assert doomed_error  # DEADLINE came back, mapped and raised
            # The expired request never touched the kernel.
            assert system.cache.vsi_of("b") == 0
            blocked.close()
            doomed.close()
        finally:
            stall.release.set()
            daemon.stop(graceful=False)

    def test_deadline_capped_by_config(self, served):
        # A huge client deadline is clamped server-side; the request
        # still succeeds (the cap is a ceiling, not a rejection).
        client = client_for(served)
        assert client.put("x", b"v", deadline_ms=10_000_000) > 0
        client.close()


class TestWatchdog:
    def test_mid_serve_crash_restarts_and_serves_again(self, served):
        system = served.system
        original = system.log.force_through
        fired = []

        def flaky(lsi):
            if not fired:
                fired.append(lsi)
                raise SimulatedCrash("device lost mid-force")
            return original(lsi)

        system.log.force_through = flaky
        client = client_for(
            served,
            policy=RetryPolicy(attempts=4, base_delay=0.001),
        )
        lsi = client.put("x", b"precious")
        # First attempt crashed serving (never acked), the watchdog
        # recovered, the retry succeeded — and the ack is stable.
        assert fired
        assert served.watchdog.restarts == 1
        assert system.health is SystemHealth.HEALTHY
        assert client.get("x") == (b"precious", lsi)
        assert system.log.is_stable(lsi)
        client.close()

    def test_restart_budget_exhaustion_fails_the_system(self):
        from repro.kernel.supervisor import SupervisorConfig
        from repro.serve import WatchdogConfig

        system = RecoverableSystem()
        daemon = ServeDaemon(
            system,
            DaemonConfig(
                port=0, http_port=None,
                watchdog=WatchdogConfig(
                    supervisor=SupervisorConfig(), max_restarts=0
                ),
            ),
        ).start()
        try:
            system.log.force_through = lambda lsi: (_ for _ in ()).throw(
                SimulatedCrash("always")
            )
            client = client_for(daemon)
            with pytest.raises(
                (ServerFailedError, DeadlineExceededError, Exception)
            ):
                client.put("x", b"v")
            # The crash is answered to the client *before* the watchdog
            # runs, so give the apply thread a moment to mark FAILED.
            deadline = time.monotonic() + 5.0
            while (
                system.health is not SystemHealth.FAILED
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert system.health is SystemHealth.FAILED
            with pytest.raises(ServerFailedError):
                client.get("x")
            client.close()
        finally:
            daemon.stop(graceful=False)


class TestShutdown:
    def test_graceful_stop_forces_and_checkpoints(self):
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=None)
        ).start()
        client = client_for(daemon)
        lsi = client.put("x", b"v")
        client.close()
        assert daemon.stop(graceful=True) == 0
        assert system.log.buffered_lsis() == []
        assert system.log.is_stable(lsi)
        assert system.health is SystemHealth.HEALTHY

    def test_stop_is_idempotent(self, served):
        assert served.stop() == 0
        assert served.stop() == 0

    def test_kill_preserves_acked_writes(self):
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=None)
        ).start()
        client = client_for(daemon)
        lsi = client.put("x", b"survives")
        client.close()
        daemon.kill()
        # The harness completes the SIGKILL simulation.
        system.crash()
        system.recover()
        assert system.read("x") == b"survives"
        assert system.cache.vsi_of("x") >= lsi

    def test_connection_refused_after_stop(self, served):
        served.stop()
        client = client_for(served)
        with pytest.raises(Exception):
            client.ping()
        client.close()


class TestHTTPEndpoint:
    def test_healthz_and_metrics(self):
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=0)
        ).start()
        try:
            base = f"http://127.0.0.1:{daemon.http_port}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as r:
                assert r.status == 200
                body = json.loads(r.read().decode())
            assert body["health"] == "healthy"
            assert body["restarts"] == 0
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as r:
                assert r.status == 200
                text = r.read().decode()
            assert "# TYPE" in text
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert excinfo.value.code == 404
        finally:
            daemon.stop(graceful=False)

    def test_liveness_vs_readiness_when_degraded(self):
        # The split: DEGRADED is *live* (restarting the process would
        # only repeat the escalation ladder) but not *ready* (it should
        # not receive fresh traffic).  Plain /healthz answers 200 with
        # the degraded body; /healthz?ready=1 answers 503.
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=0)
        ).start()
        try:
            system.enter_degraded({"gone"})
            base = f"http://127.0.0.1:{daemon.http_port}/healthz"
            with urllib.request.urlopen(base, timeout=5) as r:
                assert r.status == 200
                body = json.loads(r.read().decode())
            assert body["health"] == "degraded"
            assert body["lost_objects"] == ["gone"]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}?ready=1", timeout=5)
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read().decode())
            assert body["ready"] is False
            assert any("degraded" in r for r in body["not_ready_reasons"])
        finally:
            daemon.stop(graceful=False)

    def test_readiness_200_when_healthy(self):
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=0)
        ).start()
        try:
            url = f"http://127.0.0.1:{daemon.http_port}/healthz?ready=1"
            with urllib.request.urlopen(url, timeout=5) as r:
                assert r.status == 200
                body = json.loads(r.read().decode())
            assert body["ready"] is True
        finally:
            daemon.stop(graceful=False)

    def test_liveness_503_only_when_failed(self):
        system = RecoverableSystem()
        daemon = ServeDaemon(
            system, DaemonConfig(port=0, http_port=0)
        ).start()
        try:
            system.mark_failed()
            url = f"http://127.0.0.1:{daemon.http_port}/healthz"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read().decode())
            assert body["health"] == "failed"
        finally:
            daemon.stop(graceful=False)
