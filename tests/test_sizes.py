"""Unit tests for the byte-size model (repro.common.sizes)."""

import pytest

from repro.common.sizes import ID_SIZE, RECORD_HEADER_SIZE, SCALAR_SIZE, size_of
from repro.core.operation import TOMBSTONE


class TestSizeOf:
    def test_bytes_by_length(self):
        assert size_of(b"") == 0
        assert size_of(b"abcd") == 4
        assert size_of(bytearray(10)) == 10

    def test_memoryview(self):
        assert size_of(memoryview(b"12345")) == 5

    def test_str_utf8_length(self):
        assert size_of("abc") == 3
        assert size_of("é") == 2  # two UTF-8 bytes

    def test_none_is_free(self):
        assert size_of(None) == 0

    def test_bool_is_one_byte(self):
        assert size_of(True) == 1
        assert size_of(False) == 1

    def test_scalars_fixed_width(self):
        assert size_of(7) == SCALAR_SIZE
        assert size_of(3.14) == SCALAR_SIZE
        assert size_of(10**30) == SCALAR_SIZE  # model, not reality

    def test_containers_sum_elements(self):
        assert size_of((1, 2)) == 2 * (SCALAR_SIZE + 2)
        assert size_of([b"ab", b"c"]) == (2 + 2) + (1 + 2)
        assert size_of({"k": b"abc"}) == size_of("k") + 3 + 4

    def test_nested_containers(self):
        value = ("leaf", (1, 2), (b"x", b"yz"))
        assert size_of(value) > 0

    def test_tombstone_has_stable_size(self):
        assert size_of(TOMBSTONE) == 1

    def test_object_with_stable_size_attr(self):
        class Sized:
            stable_size = 42

        assert size_of(Sized()) == 42

    def test_object_with_stable_size_method(self):
        class Sized:
            def stable_size(self):
                return 17

        assert size_of(Sized()) == 17

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError, match="no size model"):
            size_of(object())

    def test_constants_sane(self):
        # The paper: identifiers ~16 bytes, much smaller than objects.
        assert ID_SIZE == 16
        assert RECORD_HEADER_SIZE > 0
