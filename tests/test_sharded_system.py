"""ShardedSystem: fence protocol, per-shard recovery, fence audit.

Each shard is a full RecoverableSystem with its own WAL; these tests
pin the properties the serving layer builds on: single-shard
operations touch exactly one kernel, cross-shard operations leave an
agreeing fence on every participant's stable log before returning,
recovery replays each shard independently (fence records are skipped
like any unknown kind), and the post-crash audit classifies fences as
complete / partial / conflicting exactly as the protocol permits.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.kernel.system import SystemHealth
from repro.shard import CrossShardError, ShardedSystem
from repro.wal.records import FenceRecord
from repro.workloads import register_workload_functions
from tests.conftest import logical, physical


def _sharded(shards: int = 2) -> ShardedSystem:
    sharded = ShardedSystem.build(shards)
    register_workload_functions(sharded.registry)
    return sharded


def _key_on(sharded: ShardedSystem, shard: int, tag: str = "k") -> str:
    """A key the router places on ``shard``."""
    probe = 0
    while True:
        key = f"{tag}:{probe}"
        if sharded.shard_of(key) == shard:
            return key
        probe += 1


def _cross_derive(src: str, dst: str, name: str = "xd") -> "Operation":
    return logical(name, "wl_derive", {src}, {dst}, params=(src, dst))


def _fences(sharded: ShardedSystem, shard: int):
    return [
        r
        for r in sharded.systems[shard].log.stable_records()
        if isinstance(r, FenceRecord)
    ]


class TestRouting:
    def test_single_shard_op_touches_one_kernel(self):
        sharded = _sharded(2)
        key = _key_on(sharded, 0)
        sharded.execute(physical(key, b"v"))
        assert sharded.read(key) == b"v"
        # The other shard's log never heard about it.
        assert len(sharded.systems[1].log) == 0
        assert len(sharded.systems[0].log) > 0

    def test_participants_of(self):
        sharded = _sharded(2)
        a, b = _key_on(sharded, 0, "a"), _key_on(sharded, 1, "b")
        assert sharded.participants_of(_cross_derive(a, b)) == {0, 1}
        assert sharded.participants_of(physical(a, b"v")) == {0}

    def test_build_rejects_router_mismatch(self):
        from repro.kernel.system import RecoverableSystem
        from repro.shard import ShardRouter

        with pytest.raises(ValueError):
            ShardedSystem([RecoverableSystem()], ShardRouter(2))

    def test_build_needs_a_shard(self):
        with pytest.raises(ValueError):
            ShardedSystem([])


class TestFenceProtocol:
    def test_cross_derive_writes_and_fences(self):
        sharded = _sharded(2)
        src, dst = _key_on(sharded, 0, "src"), _key_on(sharded, 1, "dst")
        sharded.execute(physical(src, b"seed"))
        writes = sharded.execute(_cross_derive(src, dst))
        expected = hashlib.sha256(b"derive" + b"seed").digest()
        assert writes == {dst: expected}
        assert sharded.read(dst) == expected
        # An agreeing fence is stable on *both* participants.
        for shard in (0, 1):
            fences = _fences(sharded, shard)
            assert len(fences) == 1, shard
        f0, f1 = _fences(sharded, 0)[0], _fences(sharded, 1)[0]
        assert f0.fence_id == f1.fence_id
        assert f0.participants == f1.participants == (0, 1)
        assert f0.vector == f1.vector
        # Only the writing shard appears in the lSI vector.
        assert set(f0.vector) == {1}

    def test_fence_is_stable_before_return(self):
        sharded = _sharded(2)
        src, dst = _key_on(sharded, 0, "s"), _key_on(sharded, 1, "d")
        sharded.execute(physical(src, b"x"))
        sharded.execute(_cross_derive(src, dst))
        # A crash right after the ack loses nothing: the fence and the
        # local physical op were forced on every participant.
        sharded.crash_all()
        sharded.recover_all()
        assert sharded.read(dst) is not None
        audit = sharded.fence_audit()
        assert audit.ok
        assert len(audit.complete) == 1
        assert not audit.partial

    def test_fence_ids_unique_across_operations(self):
        sharded = _sharded(2)
        src, dst = _key_on(sharded, 0, "s"), _key_on(sharded, 1, "d")
        sharded.execute(physical(src, b"x"))
        sharded.execute(_cross_derive(src, dst, name="xd1"))
        sharded.execute(_cross_derive(src, dst, name="xd2"))
        ids = {f.fence_id for f in _fences(sharded, 1)}
        assert len(ids) == 2

    def test_preflight_refuses_unhealthy_participant(self):
        sharded = _sharded(2)
        src, dst = _key_on(sharded, 0, "s"), _key_on(sharded, 1, "d")
        sharded.execute(physical(src, b"x"))
        sharded.crash_shard(1)
        before = len(sharded.systems[0].log)
        with pytest.raises(CrossShardError):
            sharded.execute(_cross_derive(src, dst))
        # Pre-flight means *nothing* was mutated anywhere.
        assert len(sharded.systems[0].log) == before
        assert _fences(sharded, 0) == []
        sharded.recover_shard(1)
        assert sharded.execute(_cross_derive(src, dst))

    def test_single_shard_op_pays_no_fence(self):
        sharded = _sharded(2)
        key = _key_on(sharded, 0)
        sharded.execute(physical(key, b"v"))
        assert _fences(sharded, 0) == []


class TestIndependentRecovery:
    def test_one_shard_crashes_alone(self):
        sharded = _sharded(2)
        a, b = _key_on(sharded, 0, "a"), _key_on(sharded, 1, "b")
        op = physical(a, b"on-0")
        sharded.execute(op)
        sharded.systems[0].log.force_through(op.lsi)  # the ack force
        sharded.execute(physical(b, b"on-1"))
        sharded.crash_shard(0)
        # The surviving shard never stops serving.
        assert sharded.systems[1].health is SystemHealth.HEALTHY
        assert sharded.read(b) == b"on-1"
        assert sharded.systems[0].health is SystemHealth.RECOVERING
        sharded.recover_shard(0)
        assert sharded.read(a) == b"on-0"

    def test_recovery_replays_cross_shard_writes_locally(self):
        sharded = _sharded(2)
        src, dst = _key_on(sharded, 0, "s"), _key_on(sharded, 1, "d")
        sharded.execute(physical(src, b"x"))
        writes = sharded.execute(_cross_derive(src, dst))
        # Only the destination shard crashes; its log alone must be
        # enough to replay the cross-shard write (physical logging).
        sharded.crash_shard(1)
        sharded.recover_shard(1)
        assert sharded.read(dst) == writes[dst]

    def test_health_map_is_per_shard(self):
        sharded = _sharded(3)
        sharded.crash_shard(2)
        health = sharded.health()
        assert health[0] is SystemHealth.HEALTHY
        assert health[1] is SystemHealth.HEALTHY
        assert health[2] is SystemHealth.RECOVERING


class TestFenceAudit:
    def _agreeing(self, fence_id="xs:1@1", participants=(0, 1), vector=None):
        return FenceRecord(
            fence_id=fence_id,
            origin_shard=participants[0],
            participants=tuple(participants),
            vector=dict(vector or {1: 1}),
        )

    def test_partial_fence_is_tolerated(self):
        # A crash between the fence appends leaves the fence on a
        # strict subset — legal, because it was never acked.
        sharded = _sharded(2)
        log = sharded.systems[0].log
        log.force_through(log.append(self._agreeing()))
        audit = sharded.fence_audit()
        assert audit.ok
        assert len(audit.partial) == 1
        assert audit.partial[0].present_on == (0,)
        assert not audit.complete

    def test_conflicting_vectors_flagged(self):
        sharded = _sharded(2)
        for shard, vector in ((0, {1: 1}), (1, {1: 99})):
            log = sharded.systems[shard].log
            log.force_through(log.append(self._agreeing(vector=vector)))
        audit = sharded.fence_audit()
        assert not audit.ok
        assert len(audit.conflicting) == 1

    def test_conflicting_detail_names_fence_and_both_lsis(self):
        # The diagnosis must point the operator at the corrupt record:
        # the fence id and the stable lSI of each disagreeing copy.
        sharded = _sharded(2)
        lsis = {}
        for shard, vector in ((0, {1: 1}), (1, {1: 99})):
            log = sharded.systems[shard].log
            lsi = log.append(self._agreeing(vector=vector))
            log.force_through(lsi)
            lsis[shard] = lsi
        audit = sharded.fence_audit()
        status = audit.conflicting[0]
        assert "xs:1@1" in status.detail
        assert f"lSI {lsis[0]}" in status.detail
        assert f"lSI {lsis[1]}" in status.detail
        assert "shard 0" in status.detail and "shard 1" in status.detail
        # Agreeing fences carry no diagnosis.
        assert all(s.detail == "" for s in audit.complete + audit.partial)

    def test_conflicting_participants_flagged(self):
        sharded = _sharded(3)
        for shard, participants in ((0, (0, 1)), (1, (0, 1, 2))):
            log = sharded.systems[shard].log
            log.force_through(
                log.append(self._agreeing(participants=participants))
            )
        assert not sharded.fence_audit().ok

    def test_volatile_fence_not_audited(self):
        sharded = _sharded(2)
        sharded.systems[0].log.append(self._agreeing())  # never forced
        audit = sharded.fence_audit()
        assert not audit.complete and not audit.partial

    def test_mixed_traffic_audit(self):
        sharded = _sharded(2)
        src, dst = _key_on(sharded, 0, "s"), _key_on(sharded, 1, "d")
        sharded.execute(physical(src, b"x"))
        for index in range(3):
            sharded.execute(_cross_derive(src, dst, name=f"xd{index}"))
        sharded.crash_all()
        sharded.recover_all()
        audit = sharded.fence_audit()
        assert audit.ok
        assert len(audit.complete) == 3
