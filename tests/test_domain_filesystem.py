"""Tests for the recoverable file system (repro.domains.filesystem)."""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import FsLoggingMode, RecoverableFileSystem


@pytest.fixture
def fs():
    system = RecoverableSystem()
    return RecoverableFileSystem(system)


class TestPrimitives:
    def test_write_and_read(self, fs):
        fs.write_file("a", b"data")
        assert fs.read_file("a") == b"data"
        assert fs.exists("a")

    def test_missing_file(self, fs):
        assert fs.read_file("ghost") is None
        assert not fs.exists("ghost")

    def test_overwrite(self, fs):
        fs.write_file("a", b"one")
        fs.write_file("a", b"two")
        assert fs.read_file("a") == b"two"

    def test_append(self, fs):
        fs.write_file("a", b"head")
        fs.append("a", b"-tail")
        assert fs.read_file("a") == b"head-tail"

    def test_append_to_missing_creates(self, fs):
        fs.append("new", b"x")
        assert fs.read_file("new") == b"x"

    def test_delete(self, fs):
        fs.write_file("a", b"data")
        fs.delete("a")
        assert not fs.exists("a")


class TestDerivedFiles:
    def test_copy(self, fs):
        fs.write_file("src", b"content")
        fs.copy("src", "dst")
        assert fs.read_file("dst") == b"content"

    def test_sort(self, fs):
        fs.write_file("src", b"dcba")
        fs.sort("src", "sorted")
        assert fs.read_file("sorted") == b"abcd"

    def test_concat(self, fs):
        fs.write_file("a", b"one-")
        fs.write_file("b", b"two")
        fs.concat(["a", "b"], "joined")
        assert fs.read_file("joined") == b"one-two"

    def test_copy_missing_source_logical(self, fs):
        # Logical copy of a missing file fails at execution time.
        with pytest.raises(Exception):
            fs.copy("ghost", "dst")


class TestLoggingModes:
    def test_logical_logs_no_values_for_copy(self):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system, mode=FsLoggingMode.LOGICAL)
        fs.write_file("src", b"z" * 8192)
        before = system.stats.log_value_bytes
        fs.copy("src", "dst")
        fs.sort("src", "sorted")
        assert system.stats.log_value_bytes == before

    def test_physical_logs_whole_output(self):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system, mode=FsLoggingMode.PHYSICAL)
        fs.write_file("src", b"z" * 8192)
        before = system.stats.log_value_bytes
        fs.copy("src", "dst")
        assert system.stats.log_value_bytes - before >= 8192

    def test_physical_copy_missing_raises(self):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system, mode=FsLoggingMode.PHYSICAL)
        with pytest.raises(FileNotFoundError):
            fs.copy("ghost", "dst")

    @pytest.mark.parametrize("mode", list(FsLoggingMode))
    def test_modes_agree_on_values(self, mode):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system, mode=mode)
        fs.write_file("src", b"hello world")
        fs.copy("src", "copy")
        fs.sort("src", "sorted")
        assert fs.read_file("copy") == b"hello world"
        assert fs.read_file("sorted") == bytes(sorted(b"hello world"))


class TestRecovery:
    def test_derivation_chain_recovers(self):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        fs.write_file("a", b"chain")
        fs.copy("a", "b")
        fs.sort("b", "c")
        fs.concat(["a", "c"], "d")
        system.log.force()
        for _ in range(2):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        fs2 = RecoverableFileSystem(system)
        assert fs2.read_file("d") == b"chain" + bytes(sorted(b"chain"))

    def test_deleted_files_stay_deleted(self):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        fs.write_file("tmp", b"scratch")
        fs.sort("tmp", "out")
        fs.delete("tmp")
        system.log.force()
        system.flush_all()
        system.crash()
        system.recover()
        verify_recovered(system)
        fs2 = RecoverableFileSystem(system)
        assert not fs2.exists("tmp")
        assert fs2.read_file("out") == bytes(sorted(b"scratch"))

    def test_object_id_namespacing(self, fs):
        assert fs.object_id("x") == "file:x"
