"""Tests for automatic checkpointing (SystemConfig.checkpoint_every_bytes)."""

import pytest

from repro import RecoverableSystem, SystemConfig, verify_recovered
from repro.wal.records import CheckpointRecord
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from tests.conftest import physical


def _checkpoints(system) -> int:
    return sum(
        1
        for record in system.log.stable_records()
        if isinstance(record, CheckpointRecord)
    )


class TestAutoCheckpoint:
    def test_checkpoints_fire_by_log_volume(self):
        system = RecoverableSystem(
            SystemConfig(checkpoint_every_bytes=2000)
        )
        for index in range(40):
            system.execute(physical(f"o{index}", b"v" * 64))
        assert _checkpoints(system) >= 2

    def test_disabled_by_default(self):
        system = RecoverableSystem()
        for index in range(40):
            system.execute(physical(f"o{index}", b"v" * 64))
        system.log.force()
        assert _checkpoints(system) == 0

    def test_truncation_keeps_log_bounded(self):
        bounded = RecoverableSystem(
            SystemConfig(checkpoint_every_bytes=3000)
        )
        unbounded = RecoverableSystem()
        for index in range(120):
            for system in (bounded, unbounded):
                system.execute(physical(f"o{index % 6}", b"v" * 64))
                system.flush_all()
        unbounded.log.force()
        bounded_len = len(list(bounded.log.stable_records()))
        unbounded_len = len(list(unbounded.log.stable_records()))
        assert bounded_len < unbounded_len / 2

    def test_recovery_with_auto_checkpoints(self):
        system = RecoverableSystem(
            SystemConfig(checkpoint_every_bytes=1500)
        )
        register_workload_functions(system.registry)
        workload = LogicalWorkload(
            LogicalWorkloadConfig(objects=5, operations=60, object_size=48),
            seed=9,
        )
        for index, op in enumerate(workload.operations()):
            system.execute(op)
            if index % 7 == 0:
                system.purge()
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_recovery_scans_from_latest_checkpoint(self):
        system = RecoverableSystem(
            SystemConfig(checkpoint_every_bytes=1000)
        )
        for index in range(30):
            system.execute(physical(f"o{index}", b"v" * 64))
            system.flush_all()
        system.crash()
        report = system.recover()
        verify_recovered(system)
        # Scan work is bounded by the checkpoint interval, not by the
        # 30-operation history.
        assert report.records_scanned < 20
