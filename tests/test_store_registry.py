"""The pluggable-backend registry (repro.storage.registry): name
resolution, aliases, fault-injecting variants, error paths, and the
threading of backend names through the kernel and persist layers."""

import pytest

from repro.cache.config import MultiObjectStrategy
from repro.domains.kvstore import KVPageStore, register_kv_functions
from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.persist import PersistentSystem
from repro.storage import registry as registry_module
from repro.storage.atomic import LogStructuredInstall
from repro.storage.faults import FaultModel
from repro.storage.faultwrap import (
    FaultyFileStore,
    FaultyLogStructuredStore,
    FaultyStore,
)
from repro.storage.file_store import FileStableStore
from repro.storage.logstore import LogStructuredStableStore
from repro.storage.registry import (
    StoreBackend,
    make_store,
    recommended_cache_config,
    register_store_backend,
    resolve_backend,
    store_backends,
)
from repro.storage.stable_store import StableStore


class TestMakeStore:
    def test_default_is_the_memory_backend(self):
        store = make_store()
        assert type(store) is StableStore

    def test_file_backend(self, tmp_path):
        store = make_store("file", str(tmp_path))
        assert type(store) is FileStableStore

    def test_logstore_backend(self, tmp_path):
        store = make_store("logstore", str(tmp_path))
        assert type(store) is LogStructuredStableStore

    @pytest.mark.parametrize("alias", ["log", "log-structured"])
    def test_aliases_resolve_to_logstore(self, alias, tmp_path):
        store = make_store(alias, str(tmp_path))
        assert type(store) is LogStructuredStableStore

    def test_unknown_backend_names_the_known_ones(self):
        with pytest.raises(ValueError, match="file, logstore, memory"):
            make_store("papyrus")

    def test_durable_backend_requires_root(self):
        with pytest.raises(ValueError, match="requires a root"):
            make_store("logstore")

    def test_memory_backend_ignores_missing_root(self):
        assert make_store("memory") is not None

    def test_model_builds_the_faulty_variant(self, tmp_path):
        model = FaultModel()
        assert type(make_store("memory", model=model)) is FaultyStore
        assert (
            type(make_store("file", str(tmp_path / "f"), model=model))
            is FaultyFileStore
        )
        assert (
            type(make_store("logstore", str(tmp_path / "l"), model=model))
            is FaultyLogStructuredStore
        )

    def test_backend_kwargs_pass_through(self, tmp_path):
        store = make_store(
            "logstore", str(tmp_path), segment_bytes=128, auto_compact=False
        )
        assert store.segment_bytes == 128
        assert store.auto_compact is False

    def test_shared_stats_are_adopted(self, tmp_path):
        from repro.storage.stats import IOStats

        stats = IOStats()
        store = make_store("logstore", str(tmp_path), stats)
        assert store.stats is stats


class TestRegistry:
    def test_builtins_are_listed_sorted(self):
        assert store_backends() == ["file", "logstore", "memory"]

    def test_resolve_returns_the_spec(self):
        spec = resolve_backend("logstore")
        assert spec.name == "logstore"
        assert spec.requires_root

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_store_backend(
                StoreBackend(
                    name="memory",
                    description="",
                    requires_root=False,
                    factory=lambda root, stats, **kw: StableStore(stats),
                )
            )

    def test_alias_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_store_backend(
                StoreBackend(
                    name="log",
                    description="",
                    requires_root=False,
                    factory=lambda root, stats, **kw: StableStore(stats),
                )
            )

    def test_registry_is_open_to_new_backends(self):
        register_store_backend(
            StoreBackend(
                name="test-null",
                description="a test backend",
                requires_root=False,
                factory=lambda root, stats, **kw: StableStore(stats),
            )
        )
        try:
            assert type(make_store("test-null")) is StableStore
            with pytest.raises(ValueError, match="no fault-injecting"):
                make_store("test-null", model=FaultModel())
        finally:
            registry_module._REGISTRY.pop("test-null")


class TestRecommendedCacheConfig:
    def test_logstore_gets_atomic_batch_installs(self):
        config = recommended_cache_config("logstore")
        assert config.multi_object_strategy is MultiObjectStrategy.ATOMIC
        assert isinstance(config.mechanism, LogStructuredInstall)

    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_in_place_backends_keep_the_default(self, backend):
        config = recommended_cache_config(backend)
        assert not isinstance(config.mechanism, LogStructuredInstall)


class TestBackendThreading:
    def test_system_config_builds_the_store(self, tmp_path):
        config = SystemConfig(
            store_backend="logstore", store_root=str(tmp_path)
        )
        system = RecoverableSystem(config)
        assert type(system.store) is LogStructuredStableStore
        # The constructed store shares the system's ledger.
        assert system.store.stats is system.stats

    def test_explicit_store_beats_the_config_backend(self, tmp_path):
        store = StableStore()
        config = SystemConfig(
            store_backend="logstore", store_root=str(tmp_path)
        )
        system = RecoverableSystem(config, store=store)
        assert system.store is store

    @pytest.mark.parametrize("backend", ["file", "logstore"])
    def test_persistent_open_round_trip(self, tmp_path, backend):
        dbdir = str(tmp_path / "db")
        system = PersistentSystem.open(
            dbdir,
            config=SystemConfig(cache=recommended_cache_config(backend)),
            domains=[register_kv_functions],
            store_backend=backend,
        )
        kv = KVPageStore(system)
        kv.put("k", "v1")
        kv.put("k", "v2")
        system.log.force()
        system.flush_all()
        again = PersistentSystem.open(
            dbdir,
            config=SystemConfig(cache=recommended_cache_config(backend)),
            domains=[register_kv_functions],
            store_backend=backend,
        )
        assert KVPageStore(again).get("k") == "v2"
