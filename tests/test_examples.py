"""Smoke tests: every example script runs to completion and prints OK."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {script.name for script in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=lambda s: s.name
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout
