"""Live-fire torture: acked-write durability under injected faults.

Small deterministic slices of the v3 lane — the full campaign runs in
``benchmarks/bench_e12_live_fire.py``.  Each in-process run serves a
fault-injected system over real sockets, SIGKILL-simulates the daemon
at a seeded moment, recovers, and audits that every client-acked write
is visible exactly once.
"""

from __future__ import annotations

import sys

import pytest

from repro.__main__ import main
from repro.serve import LiveFireConfig, LiveFireHarness


QUICK = LiveFireConfig(clients=2, requests_per_client=8)


class TestInProcessLane:
    def test_single_run_no_acked_losses(self):
        outcome = LiveFireHarness(QUICK).run(seed=11)
        assert outcome.ok, outcome.error
        assert outcome.losses == []
        assert outcome.acked > 0

    def test_campaign_aggregates(self):
        report = LiveFireHarness(QUICK).campaign(runs=3, seed=40)
        assert report.ok, report.summary()
        assert report.total_losses == 0
        assert len(report.outcomes) == 3
        assert report.total_acked > 0
        assert "0 acked losses" in report.summary()

    def test_runs_are_seed_deterministic_in_kill_point(self):
        # The kill point is derived from the seed, not wall-clock.
        from repro.common.rng import make_rng

        first = make_rng("livefire-kill:77").randint(1, 100)
        second = make_rng("livefire-kill:77").randint(1, 100)
        assert first == second


class TestSubprocessLane:
    def test_sigkill_run(self, tmp_path):
        outcome = LiveFireHarness(QUICK).subprocess_run(
            str(tmp_path / "kill"), seed=5, graceful=False, fault_seed=5
        )
        assert outcome.ok, outcome.error
        assert outcome.losses == []

    def test_sigterm_run_drains_cleanly(self, tmp_path):
        outcome = LiveFireHarness(QUICK).subprocess_run(
            str(tmp_path / "term"), seed=6, graceful=True, fault_seed=None
        )
        assert outcome.ok, outcome.error
        assert outcome.losses == []


class TestCLI:
    def test_torture_v3_quick(self, capsys):
        status = main(
            ["torture", "v3", "--runs", "2", "--seed", "9",
             "--clients", "2", "--requests", "6", "--no-subprocess"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "acked losses" in out

    def test_torture_v3_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "v3.jsonl"
        status = main(
            ["torture", "v3", "--runs", "1", "--seed", "2",
             "--clients", "2", "--requests", "6", "--no-subprocess",
             "--metrics-out", str(path)]
        )
        assert status == 0
        assert path.exists()
        # The dump is readable back through the metrics viewer.
        assert main(["metrics", str(path)]) == 0
        assert "serve" in capsys.readouterr().out
