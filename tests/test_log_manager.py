"""Unit tests for the WAL log manager (repro.wal.log_manager)."""

import pytest

from repro.common.errors import LogTruncationError, WALViolationError
from repro.common.identifiers import NULL_SI
from repro.core.operation import Operation, OpKind
from repro.storage import IOStats
from repro.wal.log_manager import LogManager
from repro.wal.records import CheckpointRecord, LogRecord


def _op(name: str = "op") -> Operation:
    return Operation(
        name,
        OpKind.PHYSICAL,
        reads=set(),
        writes={"x"},
        payload={"x": b"v"},
    )


class TestAppend:
    def test_lsis_monotonic_from_one(self):
        log = LogManager()
        first = log.append(LogRecord())
        second = log.append(LogRecord())
        assert first == NULL_SI + 1
        assert second == first + 1

    def test_append_operation_sets_op_lsi(self):
        log = LogManager()
        op = _op()
        lsi = log.append_operation(op)
        assert op.lsi == lsi

    def test_accounting(self):
        stats = IOStats()
        log = LogManager(stats)
        log.append_operation(_op())
        assert stats.log_records == 1
        assert stats.log_bytes > 0
        assert stats.log_value_bytes == 1  # the one payload byte


class TestForce:
    def test_records_volatile_until_forced(self):
        log = LogManager()
        lsi = log.append(LogRecord())
        assert not log.is_stable(lsi)
        log.force()
        assert log.is_stable(lsi)

    def test_force_through_prefix_only(self):
        log = LogManager()
        first = log.append(LogRecord())
        second = log.append(LogRecord())
        third = log.append(LogRecord())
        log.force_through(second)
        assert log.is_stable(first)
        assert log.is_stable(second)
        assert not log.is_stable(third)
        assert log.buffered_lsis() == [third]

    def test_force_counts_only_when_work_done(self):
        stats = IOStats()
        log = LogManager(stats)
        log.force()
        assert stats.log_forces == 0
        log.append(LogRecord())
        log.force()
        log.force()
        assert stats.log_forces == 1

    def test_force_through_before_buffer_is_noop(self):
        log = LogManager()
        lsi = log.append(LogRecord())
        log.force()
        log.append(LogRecord())
        log.force_through(lsi)  # already stable; nothing to do
        assert len(log.buffered_lsis()) == 1

    def test_assert_stable(self):
        log = LogManager()
        lsi = log.append(LogRecord())
        with pytest.raises(WALViolationError):
            log.assert_stable(lsi)
        log.force()
        log.assert_stable(lsi)
        log.assert_stable(NULL_SI)  # the null SI is vacuously stable


class TestCrash:
    def test_crash_drops_buffer_keeps_stable(self):
        log = LogManager()
        first = log.append(LogRecord())
        log.force()
        second = log.append(LogRecord())
        log.crash()
        assert log.is_stable(first)
        assert [r.lsi for r in log.stable_records()] == [first]
        assert log.buffered_lsis() == []
        # The lost lSI is never reused.
        third = log.append(LogRecord())
        assert third > second


class TestReading:
    def test_stable_records_from_lsi(self):
        log = LogManager()
        lsis = [log.append(LogRecord()) for _ in range(4)]
        log.force()
        got = [r.lsi for r in log.stable_records(from_lsi=lsis[2])]
        assert got == lsis[2:]

    def test_end_and_start_lsi(self):
        log = LogManager()
        assert log.stable_end_lsi() == NULL_SI
        lsis = [log.append(LogRecord()) for _ in range(3)]
        log.force()
        assert log.stable_end_lsi() == lsis[-1]
        assert log.stable_start_lsi() == lsis[0]


class TestTruncation:
    def test_truncate_discards_prefix(self):
        log = LogManager()
        lsis = [log.append(LogRecord()) for _ in range(5)]
        log.force()
        dropped = log.truncate_before(lsis[2], redo_start=lsis[3])
        assert dropped == 2
        assert [r.lsi for r in log.stable_records()] == lsis[2:]

    def test_truncated_lsis_count_as_stable(self):
        log = LogManager()
        lsis = [log.append(LogRecord()) for _ in range(3)]
        log.force()
        log.truncate_before(lsis[2], redo_start=lsis[2])
        assert log.is_stable(lsis[0])

    def test_truncation_past_redo_start_refused(self):
        log = LogManager()
        lsis = [log.append(LogRecord()) for _ in range(3)]
        log.force()
        with pytest.raises(LogTruncationError):
            log.truncate_before(lsis[2], redo_start=lsis[1])


class TestFlushTransactionProtocol:
    def test_append_flush_transaction(self):
        from repro.storage.stable_store import StoredVersion

        log = LogManager()
        commit_lsi = log.append_flush_transaction(
            {"a": StoredVersion(b"v", 9)}
        )
        log.force()
        records = list(log.stable_records())
        assert records[-1].lsi == commit_lsi
        assert len(records) == 2  # values + commit
