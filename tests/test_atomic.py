"""Unit tests for the atomic flush mechanisms (repro.storage.atomic)."""

import pytest

from repro.storage import (
    FlushTransaction,
    IOStats,
    RawMultiWrite,
    ShadowInstall,
    StableStore,
)
from repro.storage.stable_store import StoredVersion
from repro.wal.log_manager import LogManager
from repro.wal.records import FlushTxnCommitRecord, FlushTxnValuesRecord


def _fixture():
    stats = IOStats()
    store = StableStore(stats)
    log = LogManager(stats)
    versions = {
        "a": StoredVersion(b"A" * 100, 10),
        "b": StoredVersion(b"B" * 100, 11),
    }
    return stats, store, log, versions


class TestShadowInstall:
    def test_writes_land(self):
        stats, store, log, versions = _fixture()
        ShadowInstall().flush(store, versions, log)
        assert store.read("a").value == b"A" * 100
        assert store.read("b").vsi == 11

    def test_cost_model(self):
        stats, store, log, versions = _fixture()
        ShadowInstall().flush(store, versions, log)
        # One shadow write per object plus one pointer swing; the final
        # in-place placement is modelled by the atomic write_many.
        assert stats.shadow_writes == 2
        assert stats.pointer_swings == 1
        assert stats.atomic_flushes == 1
        assert stats.quiesce_events == 0

    def test_not_tearable(self):
        assert ShadowInstall().tearable is False


class TestFlushTransaction:
    def test_writes_land_and_logged(self):
        stats, store, log, versions = _fixture()
        FlushTransaction().flush(store, versions, log)
        assert store.read("a").value == b"A" * 100
        records = list(log.stable_records())
        assert any(isinstance(r, FlushTxnValuesRecord) for r in records)
        assert any(isinstance(r, FlushTxnCommitRecord) for r in records)

    def test_cost_model_double_write_plus_force(self):
        stats, store, log, versions = _fixture()
        FlushTransaction().flush(store, versions, log)
        # Values hit the log (value bytes) AND the store in place.
        assert stats.object_writes == 2
        assert stats.log_value_bytes == 200
        assert stats.log_forces == 1
        assert stats.quiesce_events == 1

    def test_values_record_sizes(self):
        record = FlushTxnValuesRecord(1, {"a": (b"xyz", 5)})
        assert record.value_bytes() == 3
        assert record.record_size() > 3


class TestRawMultiWrite:
    def test_is_tearable(self):
        assert RawMultiWrite().tearable is True

    def test_writes_land_without_crash(self):
        stats, store, log, versions = _fixture()
        RawMultiWrite().flush(store, versions, log)
        assert store.read("a").value == b"A" * 100
        assert store.read("b").value == b"B" * 100

    def test_mid_write_hook_tears(self):
        stats, store, log, versions = _fixture()

        def hook(obj):
            if stats.object_writes == 1:
                raise RuntimeError("crash mid-flush")

        store.mid_write_hook = hook
        with pytest.raises(RuntimeError):
            RawMultiWrite().flush(store, versions, log)
        assert len(store) == 1  # exactly one of the two landed


class TestFlushOne:
    def test_single_object_flush_is_one_write(self):
        stats, store, log, versions = _fixture()
        ShadowInstall().flush_one(store, "a", versions["a"])
        assert stats.object_writes == 1
        assert stats.shadow_writes == 0
        assert store.read("a").vsi == 10
