"""Tests for the application-recovery domain (repro.domains.application)."""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import AppLoggingMode, ApplicationRuntime, APP_PROGRAMS
from repro.domains.filesystem import RecoverableFileSystem


@pytest.fixture
def rig():
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)
    app = ApplicationRuntime(system, "app:test", program="upper")
    return system, fs, app


class TestPrograms:
    def test_known_programs(self):
        assert set(APP_PROGRAMS) == {"upper", "reverse", "sort", "checksum"}
        assert APP_PROGRAMS["reverse"](b"abc") == b"cba"
        assert APP_PROGRAMS["sort"](b"cab") == b"abc"

    def test_unknown_program_rejected(self):
        system = RecoverableSystem()
        with pytest.raises(ValueError, match="unknown application program"):
            ApplicationRuntime(system, "app:x", program="nonsense")


class TestPipeline:
    def test_read_execute_write(self, rig):
        system, fs, app = rig
        fs.write_file("in", b"hello")
        app.run_pipeline(fs.object_id("in"), fs.object_id("out"))
        assert fs.read_file("out") == b"HELLO"
        assert app.step == 1
        assert app.accum != b""

    def test_read_requires_existing_object(self, rig):
        system, fs, app = rig
        with pytest.raises(Exception):
            app.read(fs.object_id("missing"))

    def test_execute_requires_input(self, rig):
        system, fs, app = rig
        with pytest.raises(Exception):
            app.execute_step()

    def test_write_requires_output(self, rig):
        system, fs, app = rig
        op = None
        with pytest.raises(Exception):
            # LOGICAL mode validates lazily at execution.
            app.write(fs.object_id("out"))


class TestWritePL:
    def test_write_in_place_appends(self, rig):
        system, fs, app = rig
        fs.write_file("log", b"start:")
        fs.write_file("in", b"abc")
        app.read(fs.object_id("in"))
        app.execute_step()
        app.write_in_place(fs.object_id("log"))
        assert fs.read_file("log") == b"start:ABC"

    def test_write_in_place_logs_the_delta(self, rig):
        system, fs, app = rig
        fs.write_file("log", b"")
        fs.write_file("in", b"x" * 2048)
        app.read(fs.object_id("in"))
        app.execute_step()
        before = system.stats.log_value_bytes
        app.write_in_place(fs.object_id("log"))
        # Physiological: the emitted bytes travel in the record.
        assert system.stats.log_value_bytes - before >= 2048

    def test_write_in_place_requires_output(self, rig):
        system, fs, app = rig
        fs.write_file("log", b"")
        with pytest.raises(ValueError, match="empty output buffer"):
            app.write_in_place(fs.object_id("log"))

    def test_write_in_place_recovers(self, rig):
        system, fs, app = rig
        fs.write_file("log", b"L:")
        fs.write_file("in", b"data")
        app.read(fs.object_id("in"))
        app.execute_step()
        app.write_in_place(fs.object_id("log"))
        system.log.force()
        system.crash()
        system.recover()
        from repro import verify_recovered as _verify

        _verify(system)
        assert RecoverableFileSystem(system).read_file("log") == b"L:DATA"


class TestModes:
    @pytest.mark.parametrize("mode", list(AppLoggingMode))
    def test_all_modes_produce_same_values(self, mode):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        app = ApplicationRuntime(
            system, "app:m", program="reverse", mode=mode
        )
        fs.write_file("in", b"abcdef")
        app.run_pipeline(fs.object_id("in"), fs.object_id("out"))
        assert fs.read_file("out") == b"fedcba"

    def test_logical_mode_logs_fewest_value_bytes(self):
        sizes = {}
        for mode in AppLoggingMode:
            system = RecoverableSystem()
            fs = RecoverableFileSystem(system)
            app = ApplicationRuntime(system, "app:c", mode=mode)
            fs.write_file("in", b"x" * 4096)
            before = system.stats.log_value_bytes
            app.run_pipeline(fs.object_id("in"), fs.object_id("out"))
            sizes[mode] = system.stats.log_value_bytes - before
        assert sizes[AppLoggingMode.LOGICAL] == 0
        assert (
            sizes[AppLoggingMode.LOGICAL]
            < sizes[AppLoggingMode.ICDE98]
            < sizes[AppLoggingMode.PHYSIOLOGICAL]
        )


class TestRecovery:
    @pytest.mark.parametrize("mode", list(AppLoggingMode))
    def test_crash_recover_all_modes(self, mode):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        app = ApplicationRuntime(system, "app:r", program="sort", mode=mode)
        for index in range(3):
            fs.write_file(f"in{index}", bytes([90 - index, 65 + index, 77]))
            app.run_pipeline(
                fs.object_id(f"in{index}"), fs.object_id(f"out{index}")
            )
        system.log.force()
        for _ in range(4):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        fs2 = RecoverableFileSystem(system)
        assert fs2.read_file("out0") == bytes(sorted(bytes([90, 65, 77])))

    def test_app_state_recovered_exactly(self):
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        app = ApplicationRuntime(system, "app:s")
        fs.write_file("in", b"payload")
        app.run_pipeline(fs.object_id("in"), fs.object_id("out"))
        state_before = app.state()
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)
        app2 = ApplicationRuntime(system, "app:s")
        assert app2.state() == state_before
