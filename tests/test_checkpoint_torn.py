"""Damaged-checkpoint handling (repro.wal.records, repro.core.recovery).

A checkpoint summarizes the dirty-object table; trusting a damaged one
would let the analysis pass *skip* redo work — silent data loss, the
worst failure shape.  The record carries a content checksum (the
record-level belt to the file log's frame-CRC brace), and analysis
rejects any checkpoint that fails it, falling back to the previous
intact checkpoint or the log start.  Companion of test_file_log_torn,
which covers frame-level damage on disk.
"""

from __future__ import annotations

from repro.common.identifiers import NULL_SI
from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.kernel.verify import verify_recovered
from repro.persist.file_log import FileLogManager
from repro.wal.records import CheckpointRecord
from repro.workloads import register_workload_functions
from tests.conftest import physical


def _checkpoints(log):
    return [
        record
        for record in log.stable_records()
        if isinstance(record, CheckpointRecord)
    ]


def _rot(record):
    """In-place damage to a decoded checkpoint's dirty-object table,
    leaving the checksum claiming the intended content."""
    record.dirty_objects["phantom"] = 999


def _workload(log=None, ops=6):
    system = RecoverableSystem(SystemConfig(), log=log)
    register_workload_functions(system.registry)
    for index in range(ops):
        system.execute(physical(f"x{index % 3}", b"v%d" % index))
    return system


class TestChecksumUnit:
    def test_fresh_record_is_intact(self):
        record = CheckpointRecord(dirty_objects={"a": 3, "b": 7})
        assert record.checksum is not None
        assert record.is_intact()

    def test_any_table_mutation_is_detected(self):
        record = CheckpointRecord(dirty_objects={"a": 3})
        _rot(record)
        assert not record.is_intact()
        dropped = CheckpointRecord(dirty_objects={"a": 3, "b": 7})
        del dropped.dirty_objects["b"]
        assert not dropped.is_intact()

    def test_pre_checksum_records_treated_as_intact(self):
        """Records unpickled from logs written before checksums existed
        carry ``checksum=None`` and must stay acceptable."""
        record = CheckpointRecord(dirty_objects={"a": 3})
        record.checksum = None
        assert record.is_intact()

    def test_checksum_survives_file_log_roundtrip(self, tmp_path):
        root = str(tmp_path)
        system = _workload(log=FileLogManager(root))
        system.checkpoint()
        reloaded = _checkpoints(FileLogManager(root))
        assert reloaded and all(r.is_intact() for r in reloaded)


class TestAnalysisFallback:
    def test_damaged_checkpoint_falls_back_to_previous(self):
        system = _workload()
        system.checkpoint()
        for index in range(4):
            system.execute(physical(f"y{index}", b"w%d" % index))
        system.checkpoint()
        system.log.force()
        checkpoints = _checkpoints(system.log)
        assert len(checkpoints) == 2
        _rot(checkpoints[1])
        system.crash()
        report = system.recover()
        assert report.checkpoints_rejected == 1
        # Analysis anchored on the earlier, intact checkpoint.
        assert report.checkpoint_lsi == checkpoints[0].lsi
        verify_recovered(system)

    def test_damaged_sole_checkpoint_falls_back_to_log_start(self):
        system = _workload()
        system.checkpoint()
        system.log.force()
        (checkpoint,) = _checkpoints(system.log)
        _rot(checkpoint)
        system.crash()
        report = system.recover()
        assert report.checkpoints_rejected == 1
        assert report.checkpoint_lsi == NULL_SI
        verify_recovered(system)
        for index in range(6):
            assert system.peek(f"x{index % 3}") is not None

    def test_intact_checkpoints_still_honored(self):
        """The rejection path must not widen scans when nothing is
        damaged: the newest checkpoint keeps anchoring analysis."""
        system = _workload()
        system.checkpoint()
        system.log.force()
        (checkpoint,) = _checkpoints(system.log)
        system.crash()
        report = system.recover()
        assert report.checkpoints_rejected == 0
        assert report.checkpoint_lsi == checkpoint.lsi
        verify_recovered(system)

    def test_recovery_is_restartable_past_a_rejected_checkpoint(self):
        """Rejecting a checkpoint only widens the redo scan; a second
        recovery over the same log converges identically (Theorem 2
        idempotence extended to the fallback path)."""
        system = _workload()
        system.checkpoint()
        system.log.force()
        (checkpoint,) = _checkpoints(system.log)
        _rot(checkpoint)
        system.crash()
        first = system.recover()
        system.crash()
        second = system.recover()
        assert first.checkpoints_rejected == 1
        assert second.checkpoints_rejected == 1
        verify_recovered(system)
