"""Unit tests for rSI bookkeeping (repro.core.state_identifiers)."""

import pytest

from repro.core.state_identifiers import DirtyObjectTable, UninstalledWriters


class TestDirtyObjectTable:
    def test_note_write_sets_first_only(self):
        table = DirtyObjectTable()
        table.note_write("x", 5)
        table.note_write("x", 9)  # rSI stays at the first uninstalled op
        assert table.rsi_of("x") == 5

    def test_advance_monotone(self):
        table = DirtyObjectTable()
        table.note_write("x", 5)
        table.advance("x", 9)
        assert table.rsi_of("x") == 9
        with pytest.raises(ValueError, match="regress"):
            table.advance("x", 3)

    def test_remove_and_dirty(self):
        table = DirtyObjectTable()
        table.note_write("x", 5)
        assert table.is_dirty("x")
        table.remove("x")
        assert not table.is_dirty("x")
        assert table.rsi_of("x") is None
        table.remove("x")  # idempotent

    def test_min_rsi_is_redo_start(self):
        table = DirtyObjectTable()
        assert table.min_rsi() is None
        table.note_write("a", 7)
        table.note_write("b", 3)
        assert table.min_rsi() == 3

    def test_snapshot_for_checkpoint(self):
        table = DirtyObjectTable({"a": 1})
        table.note_write("b", 2)
        snap = table.snapshot()
        assert snap == {"a": 1, "b": 2}
        snap["a"] = 99
        assert table.rsi_of("a") == 1  # snapshot is a copy

    def test_len_and_contains(self):
        table = DirtyObjectTable({"a": 1})
        assert len(table) == 1
        assert "a" in table
        assert "b" not in table


class TestUninstalledWriters:
    def test_first_remaining_writer(self):
        writers = UninstalledWriters()
        writers.note("x", 3)
        writers.note("x", 7)
        assert writers.first("x") == 3
        writers.discharge("x", 3)
        assert writers.first("x") == 7
        writers.discharge("x", 7)
        assert writers.first("x") is None
        assert not writers.has_writers("x")

    def test_discharge_unknown_raises(self):
        writers = UninstalledWriters()
        with pytest.raises(KeyError):
            writers.discharge("x", 1)
        writers.note("x", 1)
        with pytest.raises(KeyError):
            writers.discharge("x", 2)

    def test_objects_listing(self):
        writers = UninstalledWriters()
        writers.note("a", 1)
        writers.note("b", 2)
        assert sorted(writers.objects()) == ["a", "b"]
