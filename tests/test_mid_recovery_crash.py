"""Crashes *during* recovery.

Redo recovery mutates no stable state except the idempotent re-apply of
committed flush transactions, so a crash at any point inside recovery
must leave the database exactly as recoverable as before — Theorem 2's
idempotence, tested at the pass boundaries the implementation has.
"""

import random

import pytest

from repro import (
    CacheConfig,
    GeneralizedRedoTest,
    MultiObjectStrategy,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.storage import FlushTransaction
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from tests.conftest import physical


def _crashed_system(seed: int = 0, flush_txn: bool = False):
    cache = (
        CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=FlushTransaction(),
        )
        if flush_txn
        else CacheConfig()
    )
    system = RecoverableSystem(SystemConfig(cache=cache))
    register_workload_functions(system.registry)
    rng = random.Random(seed)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(objects=5, operations=25, object_size=48),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.3:
            system.log.force()
        if rng.random() < 0.25:
            system.purge()
    system.crash()
    return system


class TestCrashDuringRecovery:
    @pytest.mark.parametrize("seed", range(5))
    def test_crash_after_analysis_pass(self, seed):
        """Run only the analysis pass (which may re-apply committed
        flush transactions to the store), then 'crash' and run full
        recovery: the final state must verify."""
        system = _crashed_system(seed, flush_txn=True)
        manager = RecoveryManager(
            system.log,
            system.store,
            system.registry,
            GeneralizedRedoTest(),
            system.stats,
        )
        manager._analysis_pass(RecoveryReport())  # partial recovery...
        # ...then the machine dies again.  Nothing volatile survives.
        system.recover()
        verify_recovered(system)

    @pytest.mark.parametrize("seed", range(5))
    def test_repeated_interrupted_recoveries(self, seed):
        """Recover, crash immediately (losing the adopted volatile
        state), recover again — repeatedly."""
        system = _crashed_system(seed)
        final = None
        for _attempt in range(3):
            system.recover()
            state = verify_recovered(system)
            if final is not None:
                assert state == final
            final = state
            system.crash()
        system.recover()
        verify_recovered(system)

    def test_post_recovery_partial_flush_then_crash(self):
        """Recover, flush only part of the redone work, crash again:
        the half-flushed recovery must itself be recoverable."""
        system = _crashed_system(11)
        system.recover()
        system.purge()  # install only one node of the redone work
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_analysis_pass_is_idempotent_on_store(self):
        system = _crashed_system(3, flush_txn=True)
        before = system.store.copy_versions()
        manager = RecoveryManager(
            system.log,
            system.store,
            system.registry,
            GeneralizedRedoTest(),
            system.stats,
        )
        manager._analysis_pass(RecoveryReport())
        once = system.store.copy_versions()
        manager._analysis_pass(RecoveryReport())
        twice = system.store.copy_versions()
        assert once == twice
        # And only flush-txn repairs may have changed anything.
        changed = {
            obj
            for obj in set(before) | set(once)
            if before.get(obj) != once.get(obj)
        }
        for obj in changed:
            assert once[obj].vsi >= before.get(obj, once[obj]).vsi