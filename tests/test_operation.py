"""Unit tests for the operation model (repro.core.operation)."""

import pytest

from repro.common.sizes import ID_SIZE, RECORD_HEADER_SIZE, SCALAR_SIZE
from repro.core.functions import default_registry
from repro.core.operation import (
    Operation,
    OpKind,
    TOMBSTONE,
    delete_object,
    execute_transform,
    identity_write,
)


class TestConstruction:
    def test_exp_and_notexp_partition_writeset(self):
        op = Operation(
            "op",
            OpKind.LOGICAL,
            reads={"a", "b"},
            writes={"b", "c"},
            fn="f",
        )
        assert op.exp == {"b"}
        assert op.notexp == {"c"}
        assert op.exp | op.notexp == op.writes

    def test_blind_write(self):
        op = delete_object("x")
        assert op.is_blind
        assert op.notexp == {"x"}

    def test_empty_writeset_rejected(self):
        with pytest.raises(ValueError, match="writes nothing"):
            Operation("op", OpKind.LOGICAL, reads={"a"}, writes=set(), fn="f")

    def test_physical_requires_payload(self):
        with pytest.raises(ValueError, match="needs a payload"):
            Operation("op", OpKind.PHYSICAL, reads=set(), writes={"x"})

    def test_payload_keys_must_match_writeset(self):
        with pytest.raises(ValueError, match="payload keys"):
            Operation(
                "op",
                OpKind.PHYSICAL,
                reads=set(),
                writes={"x"},
                payload={"y": b""},
            )

    def test_physiological_must_be_single_object(self):
        with pytest.raises(ValueError, match="physiological"):
            Operation(
                "op",
                OpKind.PHYSIOLOGICAL,
                reads={"x", "y"},
                writes={"x"},
                fn="f",
            )

    def test_physiological_blind_single_object_allowed(self):
        op = Operation(
            "op", OpKind.PHYSIOLOGICAL, reads=set(), writes={"x"}, fn="f"
        )
        assert op.notexp == {"x"}


class TestConflicts:
    def test_write_write_conflict(self):
        a = Operation("a", OpKind.LOGICAL, reads=set(), writes={"x"}, fn="f")
        b = Operation("b", OpKind.LOGICAL, reads=set(), writes={"x"}, fn="f")
        assert a.conflicts_with(b)

    def test_read_write_conflict(self):
        a = Operation("a", OpKind.LOGICAL, reads={"x"}, writes={"y"}, fn="f")
        b = Operation("b", OpKind.LOGICAL, reads=set(), writes={"x"}, fn="f")
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_read_read_no_conflict(self):
        a = Operation("a", OpKind.LOGICAL, reads={"x"}, writes={"y"}, fn="f")
        b = Operation("b", OpKind.LOGICAL, reads={"x"}, writes={"z"}, fn="f")
        assert not a.conflicts_with(b)


class TestSizeModel:
    def test_logical_record_carries_no_values(self):
        op = Operation(
            "op",
            OpKind.LOGICAL,
            reads={"big-src"},
            writes={"big-dst"},
            fn="copy",
            params=("big-src", "big-dst"),
        )
        assert op.value_bytes() == 0
        # header + 3 ids (reads+writes+fn) + 2 string (identifier) params
        assert op.record_size() == RECORD_HEADER_SIZE + 3 * ID_SIZE + 2 * ID_SIZE

    def test_physical_record_carries_the_value(self):
        data = b"x" * 1000
        op = Operation(
            "op",
            OpKind.PHYSICAL,
            reads=set(),
            writes={"dst"},
            payload={"dst": data},
        )
        assert op.value_bytes() == 1000
        assert op.record_size() > 1000

    def test_bulk_params_count_as_values(self):
        op = Operation(
            "op",
            OpKind.PHYSIOLOGICAL,
            reads={"a"},
            writes={"a"},
            fn="f",
            params=("a", b"y" * 500),
        )
        assert op.value_bytes() == 500

    def test_scalar_params_fixed_width(self):
        op = Operation(
            "op",
            OpKind.PHYSIOLOGICAL,
            reads={"a"},
            writes={"a"},
            fn="f",
            params=(1, 2.5),
        )
        assert op.value_bytes() == 0
        assert (
            op.record_size()
            == RECORD_HEADER_SIZE + 3 * ID_SIZE + 2 * SCALAR_SIZE
        )


class TestIdentityWrite:
    def test_shape(self):
        op = identity_write("x", b"current")
        assert op.kind is OpKind.IDENTITY
        assert op.reads == frozenset()
        assert op.writes == {"x"}
        assert op.notexp == {"x"}
        assert op.payload == {"x": b"current"}

    def test_value_logged(self):
        op = identity_write("x", b"12345")
        assert op.value_bytes() == 5


class TestExecuteTransform:
    def test_physical_returns_payload(self):
        registry = default_registry()
        op = delete_object("x")
        assert execute_transform(op, {}, registry) == {"x": TOMBSTONE}

    def test_logical_applies_registered_fn(self):
        registry = default_registry()
        op = Operation(
            "cp",
            OpKind.LOGICAL,
            reads={"a"},
            writes={"b"},
            fn="copy",
            params=("a", "b"),
        )
        assert execute_transform(op, {"a": b"v"}, registry) == {"b": b"v"}

    def test_non_dict_result_rejected(self):
        registry = default_registry()
        registry.register("bad", lambda reads: [1, 2])
        op = Operation(
            "bad", OpKind.LOGICAL, reads=set(), writes={"x"}, fn="bad"
        )
        with pytest.raises(TypeError, match="must return a dict"):
            execute_transform(op, {}, registry)


class TestIdentitySemantics:
    def test_operations_hash_by_identity(self):
        a = Operation("same", OpKind.LOGICAL, reads=set(), writes={"x"}, fn="f")
        b = Operation("same", OpKind.LOGICAL, reads=set(), writes={"x"}, fn="f")
        assert a != b
        assert len({a, b}) == 2
