"""Unit tests for write graph W (repro.core.write_graph, Figure 3)."""

from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.core.operation import Operation, OpKind
from repro.core.write_graph import BatchWriteGraph


def _op(name, reads, writes):
    return Operation(
        name, OpKind.LOGICAL, reads=set(reads), writes=set(writes), fn="f"
    )


def _graph(*ops):
    history = History()
    for op in ops:
        history.append(op)
    return BatchWriteGraph(InstallationGraph(list(history)))


class TestCollapse:
    def test_overlapping_writesets_share_node(self):
        a = _op("a", [], ["x", "y"])
        b = _op("b", [], ["y", "z"])
        graph = _graph(a, b)
        assert len(graph) == 1
        node = graph.nodes[0]
        assert node.ops == {a, b}
        assert node.vars == {"x", "y", "z"}

    def test_disjoint_writesets_separate_nodes(self):
        graph = _graph(_op("a", [], ["x"]), _op("b", [], ["y"]))
        assert len(graph) == 2

    def test_transitive_overlap_one_node(self):
        graph = _graph(
            _op("a", [], ["x", "y"]),
            _op("b", [], ["y", "z"]),
            _op("c", [], ["z", "w"]),
        )
        assert len(graph) == 1

    def test_empty_graph(self):
        graph = _graph()
        assert len(graph) == 0
        assert graph.minimal_nodes() == []


class TestEdgesAndOrder:
    def test_figure1_flush_order(self):
        # A reads {X,Y} writes Y; B reads Y writes X: Y before X.
        a = _op("A", ["X", "Y"], ["Y"])
        b = _op("B", ["Y"], ["X"])
        graph = _graph(a, b)
        assert len(graph) == 2
        node_a = graph.node_of(a)
        node_b = graph.node_of(b)
        assert graph.successors(node_a) == {node_b}
        assert graph.minimal_nodes() == [node_a]

    def test_cycle_collapsed_to_single_node(self):
        # a: Y=f(X,Y); b: X=g(Y); c: Y=h(Y) — the Section 4 example.
        # In W, c's writeset overlaps a's, merging them; the read-write
        # edges then form a cycle that collapses.
        a = _op("a", ["X", "Y"], ["Y"])
        b = _op("b", ["Y"], ["X"])
        c = _op("c", ["Y"], ["Y"])
        graph = _graph(a, b, c)
        assert len(graph) == 1
        assert graph.nodes[0].vars == {"X", "Y"}

    def test_acyclicity_always(self):
        graph = _graph(
            _op("a", ["X"], ["Y"]),
            _op("b", ["Y"], ["X"]),
            _op("c", ["X"], ["Z"]),
        )
        assert graph.is_acyclic()


class TestVarsNeverShrink:
    def test_blind_write_does_not_shrink_w(self):
        """The W inflexibility the paper fixes: a blind overwrite of X
        merges into X's node (writeset overlap) instead of freeing it."""
        a = _op("a", [], ["x", "y"])
        blind = _op("blind", [], ["x"])
        graph = _graph(a, blind)
        assert len(graph) == 1
        assert graph.nodes[0].vars == {"x", "y"}


class TestRemoval:
    def test_remove_minimal_node(self):
        a = _op("A", ["X", "Y"], ["Y"])
        b = _op("B", ["Y"], ["X"])
        graph = _graph(a, b)
        node_a = graph.node_of(a)
        graph.remove_node(node_a)
        assert len(graph) == 1
        assert graph.minimal_nodes() == [graph.node_of(b)]

    def test_node_of_missing_returns_none(self):
        a = _op("a", [], ["x"])
        graph = _graph(a)
        other = _op("other", [], ["y"])
        assert graph.node_of(other) is None


class TestNodeProperties:
    def test_reads_writes_union(self):
        a = _op("a", ["p"], ["x", "y"])
        b = _op("b", ["q"], ["y"])
        graph = _graph(a, b)
        node = graph.nodes[0]
        assert node.reads == {"p", "q"}
        assert node.writes == {"x", "y"}
        assert node.notx == set()  # W flushes everything

    def test_max_lsi(self):
        a = _op("a", [], ["x"])
        b = _op("b", [], ["x"])
        a.lsi, b.lsi = 5, 9
        graph = _graph(a, b)
        assert graph.nodes[0].max_lsi() == 9
