"""Integration tests: the observability layer wired through a running
system — WAL/cache/engine instrumentation, recovery-phase spans, the
Tracer-as-sink event stream, the torture harness's shared registry,
``obs_summary``, and the ``python -m repro metrics`` CLI."""

import pytest

from repro import (
    MetricsRegistry,
    NULL_OBS,
    RecoverableSystem,
    RecoverySupervisor,
    SupervisorConfig,
    SystemHealth,
    TortureConfig,
    TortureHarness,
    dump_jsonl,
    verify_recovered,
)
from repro.analysis import Tracer, obs_summary
from repro.domains import RecoverableFileSystem
from repro.storage.faults import FaultKind, FaultModel, FaultSpec, FaultyStore
from repro.wal.faulty_log import FaultyLog
from repro.workloads import register_workload_functions


def _run_workload(system):
    fs = RecoverableFileSystem(system)
    for index in range(8):
        fs.write_file(f"f{index}", b"payload " * 8)
    system.log.force()
    system.purge()
    system.flush_all()
    return fs


class TestDefaultsAreNull:
    def test_components_share_the_null_object(self):
        system = RecoverableSystem()
        assert system.obs is NULL_OBS
        assert system.log.obs is NULL_OBS
        assert system.cache.obs is NULL_OBS
        assert system.engine.obs is NULL_OBS

    def test_uninstrumented_run_records_nothing(self):
        system = RecoverableSystem()
        _run_workload(system)
        system.crash()
        system.recover()
        assert system.obs.span_events() == []
        assert system.obs.snapshot()["counters"] == {}


class TestAttachMetrics:
    def test_histograms_populated_by_a_workload(self):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        assert reg.histograms["wal.force"].count > 0
        assert reg.histograms["cache.flush"].count > 0
        assert reg.histograms["engine.addop"].count > 0
        assert reg.histograms["wal.force_batch_records"].count > 0

    def test_counter_value_tracks_iostats(self):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        assert reg.counter_value("io.log_forces") == system.stats.log_forces
        assert (
            reg.snapshot()["counters"]["io.object_writes"]
            == system.stats.object_writes
        )

    def test_engine_collector_exposes_mode(self):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        assert "engine.engine" in reg.snapshot()["info"]

    def test_obs_survives_crash_and_recovery(self):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        system.crash()
        assert system.cache.obs is reg
        system.recover()
        verify_recovered(system)
        # The rebuilt cache and engine still report into the registry.
        assert system.cache.obs is reg
        assert system.engine.obs is reg
        names = {event["name"] for event in reg.span_events()}
        assert {"recovery.scrub", "recovery.redo", "recovery.adopt"} <= names

    def test_explicit_registry_is_adopted(self):
        reg = MetricsRegistry()
        system = RecoverableSystem()
        assert system.attach_metrics(reg) is reg
        assert system.obs is reg


class TestTracerAsSink:
    def test_tracer_still_sees_cache_events(self):
        system = RecoverableSystem()
        tracer = system.attach_tracer()
        _run_workload(system)
        kinds = tracer.kinds()
        assert "execute" in kinds
        assert "install" in kinds or "identity-write" in kinds

    def test_attach_tracer_creates_registry_and_counts_events(self):
        system = RecoverableSystem()
        tracer = system.attach_tracer()
        assert system.obs.enabled
        _run_workload(system)
        counts = tracer.counts()
        for kind, count in counts.items():
            assert system.obs.counters[f"events.{kind}"] == count


class TestRecoverySpans:
    def _system_with_faults(self, specs):
        model = FaultModel(specs)
        system = RecoverableSystem(
            store=FaultyStore(model), log=FaultyLog(model)
        )
        register_workload_functions(system.registry)
        return system, model

    def test_supervised_run_emits_one_span_per_attempt(self):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        system.crash()
        report = RecoverySupervisor(system).run()
        assert report.converged
        attempts = reg.span_events("recovery.attempt")
        assert len(attempts) == report.attempts_used == 1
        (span,) = attempts
        assert span["tags"]["phase"] == "recovery"
        assert span["tags"]["outcome"] == "converged"
        assert span["tags"]["escalation"] == "none"
        assert reg.counters["recovery.attempts"] == 1
        assert reg.counters["recovery.converged_runs"] == 1
        assert reg.gauges["recovery.last_attempts"] == 1

    def test_crashed_attempt_span_carries_fault_and_escalation(self):
        from repro.storage.faults import RECOVERY_PHASE

        system, model = self._system_with_faults(
            [FaultSpec(0, FaultKind.CRASH, phase=RECOVERY_PHASE)]
        )
        reg = system.attach_metrics()
        _run_workload(system)
        system.crash()
        model.enter_phase(RECOVERY_PHASE)
        report = RecoverySupervisor(
            system, config=SupervisorConfig(max_attempts=8)
        ).run()
        assert report.final_health is SystemHealth.HEALTHY
        attempts = reg.span_events("recovery.attempt")
        assert len(attempts) == report.attempts_used >= 2
        first = attempts[0]
        assert first["tags"]["outcome"] == "crashed"
        assert first["tags"]["escalation"] == "restart"
        assert first["tags"]["faults"]  # the injected crash point
        assert system.stats.recovery_restarts >= 1

    def test_phase_spans_nest_under_the_attempt(self):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        system.crash()
        RecoverySupervisor(system).run()
        (redo,) = reg.span_events("recovery.redo")
        assert redo["parent"] == "recovery.attempt"
        (scrub,) = reg.span_events("recovery.scrub")
        assert scrub["parent"] == "recovery.attempt"


class TestTortureHarnessRegistry:
    def test_shared_registry_accumulates_across_runs(self):
        reg = MetricsRegistry()
        harness = TortureHarness(
            TortureConfig(objects=3, operations=8), metrics=reg
        )
        report = harness.fuzz_recovery(runs=2, seed=0)
        assert report.ok
        attempts = reg.span_events("recovery.attempt")
        total_attempts = sum(o.attempts for o in report.outcomes)
        assert len(attempts) == total_attempts
        assert all(
            event["tags"]["phase"] == "recovery" for event in attempts
        )
        assert reg.counter_value("torture.recovery_attempts") == total_attempts
        assert reg.histograms["wal.force"].count > 0

    def test_harness_without_metrics_stays_null(self):
        harness = TortureHarness(TortureConfig(objects=3, operations=8))
        assert harness.obs is None
        assert harness.fuzz(runs=1, seed=0).ok


class TestObsSummary:
    def test_renders_counters_and_histograms(self):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        text = obs_summary(reg).render()
        assert "wal.force" in text
        assert "io.log_forces" in text

    def test_accepts_snapshot_mapping(self):
        reg = MetricsRegistry()
        reg.count("a", 5)
        reg.observe("h", 0.001)
        text = obs_summary(reg.snapshot(), top=1).render()
        assert "a" in text
        assert "h" in text


class TestMetricsCli:
    def _artifact(self, tmp_path):
        system = RecoverableSystem()
        reg = system.attach_metrics()
        _run_workload(system)
        system.crash()
        RecoverySupervisor(system).run()
        path = str(tmp_path / "metrics.jsonl")
        dump_jsonl(reg, path)
        return path

    def test_prometheus_view(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._artifact(tmp_path)
        assert main(["metrics", path]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_wal_force histogram" in out
        assert "repro_wal_force_count" in out
        assert "repro_recovery_attempt_count 1" in out

    def test_summary_view(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._artifact(tmp_path)
        assert main(["metrics", path, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "recovery.attempt" in out
        assert "p99" in out

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["metrics", str(tmp_path / "absent.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "cannot read telemetry file" in err

    def test_garbage_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not telemetry\n{nor: this}\n")
        assert main(["metrics", str(path)]) == 1
        err = capsys.readouterr().err
        assert "not a telemetry JSONL file" in err

    def test_wrong_schema_json_is_a_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main

        # Well-formed JSONL, but not the dump_jsonl format.
        path = tmp_path / "other.jsonl"
        path.write_text('{"some": "record"}\n{"other": 2}\n')
        assert main(["metrics", str(path)]) == 1
        err = capsys.readouterr().err
        assert "not a telemetry JSONL file" in err

    def test_directory_path_is_a_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["metrics", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "cannot read telemetry file" in err

    def test_bad_file_errors_never_traceback(self, tmp_path):
        # The CLI promise: argument problems exit 1 via stderr, they
        # never escape as exceptions.
        import subprocess
        import sys

        path = tmp_path / "garbage.jsonl"
        path.write_text("x\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "metrics", str(path)],
            capture_output=True,
            text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 1
        assert "Traceback" not in proc.stderr
        assert "not a telemetry JSONL file" in proc.stderr

    def test_torture_metrics_out_writes_artifact(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.obs import load_jsonl

        path = str(tmp_path / "torture.jsonl")
        assert main([
            "torture", "fuzz", "--runs", "2", "--ops", "8",
            "--objects", "3", "--metrics-out", path,
        ]) == 0
        loaded = load_jsonl(path)
        assert loaded["meta"]["format"] == 1
        assert loaded["snapshot"]["histograms"]["wal.force"]["count"] > 0
