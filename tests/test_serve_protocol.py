"""Wire protocol: framing, byte envelopes, and malformed streams."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.serve import protocol
from repro.serve.errors import ProtocolError


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestValueEnvelopes:
    def test_bytes_round_trip(self):
        encoded = protocol.encode_value(b"\x00\xffdata")
        assert set(encoded) == {"__bytes__"}
        assert protocol.decode_value(encoded) == b"\x00\xffdata"

    def test_bytearray_encodes_as_bytes(self):
        assert protocol.decode_value(
            protocol.encode_value(bytearray(b"xy"))
        ) == b"xy"

    def test_plain_values_pass_through(self):
        for value in (None, 7, "text", [1, 2], {"k": "v"}):
            assert protocol.encode_value(value) == value
            assert protocol.decode_value(value) == value

    def test_dict_with_other_keys_is_not_an_envelope(self):
        value = {"__bytes__": "AA==", "extra": 1}
        assert protocol.decode_value(value) == value

    def test_bad_base64_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            protocol.decode_value({"__bytes__": "!!not base64!!"})


class TestFraming:
    def test_round_trip(self):
        a, b = _pair()
        try:
            message = {"id": 1, "kind": "put", "value": {"__bytes__": "AA=="}}
            protocol.send_frame(a, message)
            assert protocol.recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_sequence(self):
        a, b = _pair()
        try:
            for index in range(5):
                protocol.send_frame(a, {"id": index})
            for index in range(5):
                assert protocol.recv_frame(b) == {"id": index}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = _pair()
        try:
            a.sendall(struct.pack("<I", 100) + b"{")
            a.close()
            with pytest.raises(ProtocolError):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_claimed_length_raises(self):
        a, b = _pair()
        try:
            a.sendall(struct.pack("<I", protocol.MAX_FRAME + 1))
            with pytest.raises(ProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_outgoing_frame_raises(self):
        a, b = _pair()
        try:
            with pytest.raises(ProtocolError):
                protocol.send_frame(
                    a, {"pad": "x" * (protocol.MAX_FRAME + 1)}
                )
        finally:
            a.close()
            b.close()

    def test_undecodable_payload_raises(self):
        a, b = _pair()
        try:
            payload = b"\xff\xfe not json"
            a.sendall(struct.pack("<I", len(payload)) + payload)
            with pytest.raises(ProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_raises(self):
        a, b = _pair()
        try:
            payload = b"[1, 2, 3]"
            a.sendall(struct.pack("<I", len(payload)) + payload)
            with pytest.raises(ProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_large_frame_round_trips(self):
        # Bigger than one socket buffer, so _recv_exact must loop.
        a, b = _pair()
        try:
            message = {"id": 1, "pad": "x" * 300_000}
            received = {}
            thread = threading.Thread(
                target=lambda: received.update(protocol.recv_frame(b))
            )
            thread.start()
            protocol.send_frame(a, message)
            thread.join(timeout=10.0)
            assert received == message
        finally:
            a.close()
            b.close()


class TestResponses:
    def test_ok_response_carries_health_and_fields(self):
        response = protocol.ok_response(9, "healthy", lsi=4)
        assert response == {
            "id": 9, "ok": True, "health": "healthy", "lsi": 4
        }

    def test_error_response_with_hint(self):
        response = protocol.error_response(
            3, "BACKPRESSURE", "full", "recovering", retry_after_ms=40
        )
        assert response["ok"] is False
        assert response["health"] == "recovering"
        assert response["error"]["code"] == "BACKPRESSURE"
        assert response["error"]["retry_after_ms"] == 40

    def test_error_response_without_hint_omits_key(self):
        response = protocol.error_response(3, "FAILED", "gone", "failed")
        assert "retry_after_ms" not in response["error"]

    def test_error_codes_mirror_serve_errors(self):
        from repro.serve import errors

        for cls in (
            errors.ProtocolError,
            errors.BadRequestError,
            errors.BackpressureError,
            errors.DeadlineExceededError,
            errors.ServerUnavailableError,
            errors.ShuttingDownError,
            errors.ServerFailedError,
        ):
            assert cls.code in protocol.ERROR_CODES
