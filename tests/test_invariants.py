"""Tests for runtime invariant checking (repro.core.invariants) — the
executable consequences of Lemmas 1-3 / Theorem 3."""

import pytest

from repro.common.errors import UnrecoverableStateError
from repro.core.invariants import (
    check_explainable,
    check_inv_parts,
    leading_edge_installed,
    stable_values_of,
)
from repro.core.oracle import Oracle
from repro.kernel.verify import verify_recovered
from tests.conftest import logical, physical


def _uninstalled(system):
    return set(system.cache.uninstalled_operations())


class TestLeadingEdge:
    def test_partition(self, system):
        a = physical("x", b"1")
        b = physical("y", b"2")
        system.execute(a)
        system.execute(b)
        system.purge()
        uninstalled = _uninstalled(system)
        installed = leading_edge_installed(system.history, uninstalled)
        assert installed | uninstalled == set(system.history)
        assert installed & uninstalled == set()


class TestExplainabilityInvariant:
    def test_holds_after_every_install(self, system):
        """Theorem 3, executable: the stable state stays explainable by
        the leading edge after every PurgeCache step."""
        oracle = Oracle(system.registry)
        system.execute(physical("x", b"hello"))
        system.execute(logical("cp", "copy", {"x"}, {"y"}, ("x", "y")))
        system.execute(physical("x", b"world"))
        while True:
            check_explainable(
                system.history,
                _uninstalled(system),
                stable_values_of(system.store),
                oracle,
                search_on_failure=False,
            )
            if not system.purge():
                break

    def test_corruption_with_blind_initializer_still_explainable(self, system):
        # With a blind physical initializer on the log, ANY stable junk
        # in x is explainable by I = {}: full redo regenerates it.
        oracle = Oracle(system.registry)
        system.execute(physical("x", b"v"))
        system.execute(logical("touch", "wl_touch", {"x"}, {"x"}, ("x",)))
        system.flush_all()
        system.store.write("x", b"corrupt", 999)
        check_explainable(
            system.history,
            _uninstalled(system),
            stable_values_of(system.store),
            oracle,
            search_on_failure=True,
        )

    def test_detects_unexplainable_state(self, system):
        # x's every writer reads x (no blind re-creator), so a stable
        # value matching no prefix of the history is unexplainable.
        oracle = Oracle(system.registry)
        system.execute(logical("t1", "wl_touch", {"x"}, {"x"}, ("x",)))
        system.execute(logical("t2", "wl_touch", {"x"}, {"x"}, ("x",)))
        system.flush_all()
        system.store.write("x", b"corrupt", 999)
        with pytest.raises(UnrecoverableStateError, match="exposed"):
            check_explainable(
                system.history,
                _uninstalled(system),
                stable_values_of(system.store),
                oracle,
            )

    def test_fallback_search_accepts_smaller_explanations(self, system):
        """After a crash loses installation records, the leading edge
        may not explain S but a smaller prefix set does."""
        oracle = Oracle(system.registry)
        system.execute(physical("x", b"v"))
        system.execute(logical("cp", "copy", {"x"}, {"y"}, ("x", "y")))
        system.log.force()
        system.purge()
        # Pretend everything is installed (a stale leading edge): the
        # fallback search must still find the true explanation.
        check_explainable(
            system.history,
            set(),
            stable_values_of(system.store),
            oracle,
            search_on_failure=True,
        )


class TestInvParts:
    def test_parts_hold_during_normal_execution(self, system):
        system.execute(physical("x", b"1"))
        system.execute(logical("cp", "copy", {"x"}, {"y"}, ("x", "y")))
        system.purge()
        check_inv_parts(system.history, _uninstalled(system))

    def test_stable_values_of_extracts_mapping(self, system):
        system.execute(physical("x", b"1"))
        system.flush_all()
        values = stable_values_of(system.store)
        assert values == {"x": b"1"}
