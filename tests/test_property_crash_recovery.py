"""Property-based end-to-end crash-recovery testing (Theorem 2).

For random workloads, random interleavings of log forces / purges /
checkpoints, and a crash at an arbitrary point, the recovered system
must agree with the oracle over the durable history — under every cache
configuration and both sound REDO tests.

This is the executable form of the paper's main guarantee: cache
management per the (refined) write graph keeps the stable database
recoverable, and the generalized REDO test recovers it.
"""

import random

from tests.conftest import examples
from hypothesis import given, settings, strategies as st

from repro import (
    CacheConfig,
    GeneralizedRedoTest,
    GraphMode,
    MultiObjectStrategy,
    RecoverableSystem,
    SystemConfig,
    VsiRedoTest,
    verify_recovered,
)
from repro.storage import FlushTransaction, ShadowInstall
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)


def _make_system(config_index: int, test_index: int) -> RecoverableSystem:
    cache_configs = [
        lambda: CacheConfig(),
        lambda: CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=ShadowInstall(),
        ),
        lambda: CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=FlushTransaction(),
        ),
        lambda: CacheConfig(
            graph_mode=GraphMode.W,
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=ShadowInstall(),
        ),
    ]
    redo_tests = [GeneralizedRedoTest, VsiRedoTest]
    config = SystemConfig(
        cache=cache_configs[config_index % len(cache_configs)](),
        redo_test=redo_tests[test_index % len(redo_tests)](),
    )
    system = RecoverableSystem(config)
    register_workload_functions(system.registry)
    return system


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    config_index=st.integers(min_value=0, max_value=3),
    test_index=st.integers(min_value=0, max_value=1),
    p_delete=st.sampled_from([0.0, 0.15]),
)
@settings(max_examples=examples(60), deadline=None)
def test_crash_recover_matches_oracle(seed, config_index, test_index, p_delete):
    rng = random.Random(seed)
    system = _make_system(config_index, test_index)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=5, operations=30, object_size=48, p_delete=p_delete
        ),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        roll = rng.random()
        if roll < 0.35:
            system.log.force()
        if roll < 0.25:
            system.purge()
        if rng.random() < 0.06:
            system.checkpoint(truncate=rng.random() < 0.5)
    system.crash()
    system.recover()
    verify_recovered(system)


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=examples(25), deadline=None)
def test_repeated_crash_cycles(seed):
    """Crash/recover repeatedly, continuing the workload in between."""
    rng = random.Random(seed)
    system = _make_system(seed % 4, seed % 2)
    for cycle in range(3):
        workload = LogicalWorkload(
            LogicalWorkloadConfig(
                objects=4, operations=15, object_size=32, p_delete=0.1
            ),
            seed=seed * 10 + cycle,
        )
        for op in workload.operations():
            system.execute(op)
            if rng.random() < 0.3:
                system.log.force()
            if rng.random() < 0.2:
                system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=examples(25), deadline=None)
def test_recovery_is_idempotent(seed):
    """Theorem 2 says Recover is idempotent: crashing immediately after
    a recovery and recovering again reaches the same state."""
    system = _make_system(0, 0)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(objects=4, operations=20, object_size=32),
        seed=seed,
    )
    rng = random.Random(seed)
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.4:
            system.log.force()
        if rng.random() < 0.2:
            system.purge()
    system.crash()
    system.recover()
    first = verify_recovered(system)
    system.crash()
    system.recover()
    second = verify_recovered(system)
    assert first == second


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    flush_everything=st.booleans(),
)
@settings(max_examples=examples(25), deadline=None)
def test_nothing_lost_when_everything_flushed(seed, flush_everything):
    """With the full cache drained before the crash, recovery redoes
    nothing (generalized test) and state is exact."""
    system = _make_system(0, 0)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(objects=4, operations=20, object_size=32),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
    if flush_everything:
        system.flush_all()
    else:
        system.log.force()
    system.crash()
    report = system.recover()
    verify_recovered(system)
    if flush_everything:
        assert report.ops_redone == 0
