"""Property-based tests on the write-graph data structures.

Invariants checked over randomly generated operation sequences:

* both write graphs are always acyclic (a flush order always exists);
* in rW, every object with an uninstalled writer sits in the vars of at
  most one node, and that node contains its last uninstalled writer;
* rW's Notx objects are always disjoint from its vars;
* rW's flush sets are never larger than W's for the same operations
  (the refinement never loses precision);
* draining either graph by repeatedly removing a minimal node succeeds
  and installs every operation exactly once.
"""

from typing import List

from tests.conftest import examples
from hypothesis import given, settings, strategies as st

from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.core.operation import Operation, OpKind
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.core.write_graph import BatchWriteGraph

OBJECTS = ["a", "b", "c", "d", "e"]


@st.composite
def operation_specs(draw, max_ops: int = 24):
    """Random (reads, writes) shape sequences over a small object pool."""
    count = draw(st.integers(min_value=1, max_value=max_ops))
    specs = []
    for _ in range(count):
        writes = draw(
            st.sets(st.sampled_from(OBJECTS), min_size=1, max_size=2)
        )
        reads = draw(
            st.sets(st.sampled_from(OBJECTS), min_size=0, max_size=3)
        )
        specs.append((frozenset(reads), frozenset(writes)))
    return specs


def _build_ops(specs) -> List[Operation]:
    history = History()
    ops = []
    for index, (reads, writes) in enumerate(specs):
        op = Operation(
            f"op{index}", OpKind.LOGICAL, reads=reads, writes=writes, fn="f"
        )
        history.append(op)
        op.lsi = index + 1
        ops.append(op)
    return ops


def _build_rw(ops) -> RefinedWriteGraph:
    graph = RefinedWriteGraph()
    for op in ops:
        graph.add_operation(op)
    return graph


class TestRWInvariants:
    @given(operation_specs())
    @settings(max_examples=examples(120), deadline=None)
    def test_always_acyclic(self, specs):
        graph = _build_rw(_build_ops(specs))
        assert graph.is_acyclic()

    @given(operation_specs())
    @settings(max_examples=examples(120), deadline=None)
    def test_vars_holder_unique_and_holds_last_writer(self, specs):
        ops = _build_ops(specs)
        graph = _build_rw(ops)
        last_writer = {}
        for op in ops:
            for obj in op.writes:
                last_writer[obj] = op
        for obj, writer in last_writer.items():
            holders = [n for n in graph.nodes if obj in n.vars]
            assert len(holders) <= 1, f"{obj} in several flush sets"
            if holders:
                assert writer in holders[0].ops

    @given(operation_specs())
    @settings(max_examples=examples(120), deadline=None)
    def test_notx_disjoint_from_vars(self, specs):
        graph = _build_rw(_build_ops(specs))
        for node in graph.nodes:
            assert not (node.vars & node.notx)
            assert node.vars <= node.writes

    @given(operation_specs())
    @settings(max_examples=examples(100), deadline=None)
    def test_drain_installs_every_op_once(self, specs):
        ops = _build_ops(specs)
        graph = _build_rw(ops)
        installed = []
        while graph.nodes:
            minimal = graph.minimal_nodes()
            assert minimal, "acyclic graph must have a minimal node"
            node = minimal[0]
            installed.extend(node.ops)
            graph.remove_node(node)
        assert sorted(op.name for op in installed) == sorted(
            op.name for op in ops
        )


class TestWVersusRW:
    @given(operation_specs())
    @settings(max_examples=examples(100), deadline=None)
    def test_w_acyclic_and_complete(self, specs):
        ops = _build_ops(specs)
        graph = BatchWriteGraph(InstallationGraph(ops))
        assert graph.is_acyclic()
        covered = set()
        for node in graph.nodes:
            covered |= node.ops
        assert covered == set(ops)

    @given(operation_specs())
    @settings(max_examples=examples(100), deadline=None)
    def test_rw_flush_sets_no_larger_than_w(self, specs):
        """For every object, the rW node flushing it has a flush set no
        larger than the W node flushing it: the refinement only ever
        removes objects from atomic flush sets."""
        ops = _build_ops(specs)
        w_graph = BatchWriteGraph(InstallationGraph(ops))
        rw_graph = _build_rw(ops)
        w_set_of = {}
        for node in w_graph.nodes:
            for obj in node.vars:
                w_set_of[obj] = len(node.vars)
        for node in rw_graph.nodes:
            for obj in node.vars:
                assert len(node.vars) <= w_set_of[obj], (
                    f"rW flush set for {obj} larger than W's"
                )

    @given(operation_specs())
    @settings(max_examples=examples(100), deadline=None)
    def test_rw_total_flushed_objects_at_most_w(self, specs):
        """rW flushes at most as many object-slots as W (Notx objects
        are installed without flushing)."""
        ops = _build_ops(specs)
        w_total = sum(
            len(n.vars) for n in BatchWriteGraph(InstallationGraph(ops)).nodes
        )
        rw_total = sum(len(n.vars) for n in _build_rw(ops).nodes)
        assert rw_total <= w_total
