"""Tests for log record types (repro.wal.records)."""

from repro.common.sizes import ID_SIZE, RECORD_HEADER_SIZE, SCALAR_SIZE
from repro.core.operation import Operation, OpKind
from repro.wal.records import (
    CheckpointRecord,
    FlushRecord,
    FlushTxnCommitRecord,
    FlushTxnValuesRecord,
    InstallationRecord,
    LogRecord,
    OperationRecord,
)


class TestBaseRecord:
    def test_header_only(self):
        record = LogRecord()
        assert record.record_size() == RECORD_HEADER_SIZE
        assert record.value_bytes() == 0


class TestOperationRecord:
    def test_delegates_to_operation(self):
        op = Operation(
            "op",
            OpKind.PHYSICAL,
            reads=set(),
            writes={"x"},
            payload={"x": b"abc"},
        )
        record = OperationRecord(op)
        assert record.record_size() == op.record_size()
        assert record.value_bytes() == 3


class TestInstallationRecord:
    def test_size_scales_with_entries(self):
        small = InstallationRecord(flushed={"a": None}, unexposed={})
        large = InstallationRecord(
            flushed={"a": None, "b": 3},
            unexposed={"c": 9},
            installed_lsis=(1, 2, 3),
        )
        assert large.record_size() > small.record_size()

    def test_no_value_bytes(self):
        record = InstallationRecord(flushed={"a": 1}, unexposed={"b": 2})
        assert record.value_bytes() == 0


class TestFlushRecord:
    def test_fixed_small_size(self):
        record = FlushRecord("obj", 17)
        assert (
            record.record_size()
            == RECORD_HEADER_SIZE + ID_SIZE + SCALAR_SIZE
        )


class TestCheckpointRecord:
    def test_size_scales_with_dirty_table(self):
        empty = CheckpointRecord({})
        loaded = CheckpointRecord({f"o{i}": i for i in range(10)})
        assert (
            loaded.record_size() - empty.record_size()
            == 10 * (ID_SIZE + SCALAR_SIZE)
        )


class TestFlushTxnRecords:
    def test_values_record_carries_values(self):
        record = FlushTxnValuesRecord(
            1, {"a": (b"12345", 9), "b": (b"6789", 10)}
        )
        assert record.value_bytes() == 9
        assert record.record_size() > 9

    def test_commit_record_small(self):
        record = FlushTxnCommitRecord(1)
        assert record.record_size() == RECORD_HEADER_SIZE + SCALAR_SIZE
        assert record.value_bytes() == 0
