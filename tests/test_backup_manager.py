"""Tests for BackupManager: fuzzy backups under concurrent execution,
truncation protection, retention, and media recovery."""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.kernel import BackupManager
from repro.workloads import register_workload_functions
from tests.conftest import logical, physical


@pytest.fixture
def rig():
    system = RecoverableSystem()
    register_workload_functions(system.registry)
    return system, BackupManager(system)


def _seed(system, count=4):
    for index in range(count):
        system.execute(physical(f"o{index}", bytes([index]) * 16))
    system.flush_all()


class TestTakingBackups:
    def test_backup_copies_stable_objects(self, rig):
        system, manager = rig
        _seed(system)
        backup = manager.take_backup()
        assert len(backup) == len(system.store)
        assert backup.finished

    def test_interleave_makes_it_fuzzy(self, rig):
        system, manager = rig

        def interleave(step, obj):
            if step == 1:
                system.execute(
                    logical(
                        "mix", "wl_combine", {"o0", "o1"}, {"o1"},
                        ("o0", "o1"),
                    )
                )
                system.flush_all()

        _seed(system)
        backup = manager.take_backup(interleave=interleave)
        assert backup.finished
        # The image must be repairable by replay.
        report = manager.restore_latest()
        verify_recovered(system)

    def test_redo_window_covers_dirty_objects(self, rig):
        system, manager = rig
        _seed(system)
        # An uninstalled operation: its effect is in neither the store
        # nor the image, so the window must open at its rSI.
        op = physical("dirty-obj", b"x")
        system.execute(op)
        system.log.force()
        backup = manager.take_backup()
        assert backup.start_lsi <= op.lsi
        manager.restore_latest()
        verify_recovered(system)
        assert system.read("dirty-obj") == b"x"


class TestTruncationProtection:
    def test_backup_window_survives_checkpoint_truncation(self, rig):
        system, manager = rig
        _seed(system)
        backup = manager.take_backup()
        # More work + aggressive checkpointing.
        for index in range(4):
            system.execute(physical(f"late{index}", b"z"))
        system.flush_all()
        system.checkpoint(truncate=True)
        # The protected window is still on the log.
        assert system.log.stable_start_lsi() <= backup.start_lsi
        manager.restore_latest()
        verify_recovered(system)
        assert system.read("late3") == b"z"

    def test_discard_releases_protection(self, rig):
        system, manager = rig
        _seed(system)
        backup = manager.take_backup()
        manager.discard(backup)
        assert system.log.min_protected_lsi() is None
        system.checkpoint(truncate=True)

    def test_retention_keeps_latest(self, rig):
        system, manager = rig
        _seed(system)
        first = manager.take_backup()
        system.execute(physical("extra", b"e"))
        system.flush_all()
        second = manager.take_backup()
        dropped = manager.discard_older_than_latest()
        assert dropped == 1
        assert manager.retained() == [second]
        assert system.log.min_protected_lsi() == second.start_lsi


class TestMediaRecovery:
    def test_restore_without_backup_rejected(self, rig):
        _system, manager = rig
        with pytest.raises(ValueError, match="no backup"):
            manager.restore_latest()

    def test_full_cycle_with_post_backup_work(self, rig):
        system, manager = rig
        _seed(system)
        manager.take_backup()
        # Post-backup work, fully durable.
        system.execute(
            logical("mix", "wl_combine", {"o0", "o1"}, {"o1"}, ("o0", "o1"))
        )
        system.execute(physical("o2", b"overwritten"))
        system.flush_all()
        expected = {obj: system.read(obj) for obj in ("o0", "o1", "o2")}
        report = manager.restore_latest()
        verify_recovered(system)
        assert report.ops_redone >= 1
        assert {
            obj: system.read(obj) for obj in ("o0", "o1", "o2")
        } == expected

    def test_repeated_restores_idempotent(self, rig):
        system, manager = rig
        _seed(system)
        manager.take_backup()
        system.execute(physical("x", b"post"))
        system.flush_all()
        manager.restore_latest()
        first = system.stable_values()
        manager.restore_latest()
        verify_recovered(system)
        assert system.stable_values() == first
