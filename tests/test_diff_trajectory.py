"""Unit tests for the CI trajectory diff (benchmarks/diff_trajectory.py)."""

from __future__ import annotations

import json

import pytest

from benchmarks.diff_trajectory import collect_lanes, compare, main


SAMPLE = {
    "max_ops": 1000,
    "graph_maintenance": {
        "indexed": {
            "heavy@1000": {"ops_per_sec": 50000.0, "p50_us": 11.0},
            "heavy@250": {"ops_per_sec": 60000.0},
        },
        "reference": {
            "heavy@250": {"ops_per_sec": 1500.0},
            "heavy@1000": {
                "ops_per_sec": 1200.0,
                "extrapolated": True,
                "fit_exponent": 2.0,
            },
        },
        "speedup": 33.3,
    },
    "kernel_end_to_end": {"1000": {"ops_per_sec": 9000.0}},
    "recovery_telemetry": {
        "seconds_per_attempt": 0.02,
        "attempts": 12,
    },
}


class TestCollectLanes:
    def test_collects_all_measured_lanes(self):
        lanes = collect_lanes(SAMPLE)
        assert lanes == {
            "graph_maintenance.indexed.heavy@1000": (50000.0, True),
            "graph_maintenance.indexed.heavy@250": (60000.0, True),
            "graph_maintenance.reference.heavy@250": (1500.0, True),
            "kernel_end_to_end.1000": (9000.0, True),
            "recovery_telemetry.seconds_per_attempt": (0.02, False),
        }

    def test_extrapolated_lanes_skipped(self):
        lanes = collect_lanes(SAMPLE)
        assert "graph_maintenance.reference.heavy@1000" not in lanes

    def test_seconds_per_lane_is_lower_is_better(self):
        lanes = collect_lanes({"x": {"seconds_per_recovery": 1.5}})
        assert lanes == {"x.seconds_per_recovery": (1.5, False)}

    def test_extrapolated_seconds_lane_skipped(self):
        lanes = collect_lanes(
            {"x": {"seconds_per_recovery": 1.5, "extrapolated": True}}
        )
        assert lanes == {}

    def test_non_dict_input(self):
        assert collect_lanes([1, 2]) == {}
        assert collect_lanes({"a": 3.0}) == {}

    def test_acked_per_s_lane_is_higher_is_better(self):
        # The E12/E13 serving lanes: bare numeric acked_per_s* keys.
        lanes = collect_lanes(
            {
                "serving_throughput": {"acked_per_s": 1800.0},
                "sharded_scaling": {
                    "acked_per_s_1": 500.0,
                    "acked_per_s_4": 2000.0,
                    "speedup_1_to_4": 4.0,  # not a lane
                },
            }
        )
        assert lanes == {
            "serving_throughput.acked_per_s": (1800.0, True),
            "sharded_scaling.acked_per_s_1": (500.0, True),
            "sharded_scaling.acked_per_s_4": (2000.0, True),
        }

    def test_acked_per_s_drop_regresses(self):
        base = collect_lanes({"x": {"acked_per_s": 1000.0}})
        cur = collect_lanes({"x": {"acked_per_s": 400.0}})
        _, regressions = compare(base, cur, threshold=0.5)
        assert len(regressions) == 1

    def test_extrapolated_acked_lane_skipped(self):
        lanes = collect_lanes(
            {"x": {"acked_per_s": 1000.0, "extrapolated": True}}
        )
        assert lanes == {}

    def test_c3_lane_is_lower_is_better(self):
        # The E14 storage-cost lanes: bare numeric c3_* keys.
        lanes = collect_lanes(
            {
                "backend_costs": {
                    "logstore+batch": {
                        "c3_identity_writes": 0,
                        "c3_flush_double_writes": 0,
                        "object_writes": 7,  # not a lane
                    }
                }
            }
        )
        assert lanes == {
            "backend_costs.logstore+batch.c3_identity_writes": (0.0, False),
            "backend_costs.logstore+batch.c3_flush_double_writes": (
                0.0,
                False,
            ),
        }

    def test_lag_lane_is_lower_is_better(self):
        # The E15 replication lanes: witness redo-lag watermarks and
        # failover percentiles both regress upward.
        lanes = collect_lanes(
            {
                "redo_lag": {"lag_records_peak": 12, "redo_cycles": 4},
                "failover_campaign": {"seconds_per_failover_p95": 0.2},
            }
        )
        assert lanes == {
            "redo_lag.lag_records_peak": (12.0, False),
            "failover_campaign.seconds_per_failover_p95": (0.2, False),
        }

    def test_lag_rise_regresses(self):
        base = collect_lanes({"x": {"lag_records_peak": 10}})
        cur = collect_lanes({"x": {"lag_records_peak": 20}})
        _, regressions = compare(base, cur, threshold=0.2)
        assert len(regressions) == 1

    def test_c3_rise_from_zero_regresses(self):
        # The zero is a pinned claim: any rise off it must fail the
        # build, threshold notwithstanding.
        base = collect_lanes({"x": {"c3_identity_writes": 0}})
        cur = collect_lanes({"x": {"c3_identity_writes": 3}})
        _, regressions = compare(base, cur, threshold=0.2)
        assert len(regressions) == 1

    def test_c3_zero_stays_zero_is_ok(self):
        base = collect_lanes({"x": {"c3_identity_writes": 0}})
        _, regressions = compare(base, base, threshold=0.2)
        assert regressions == []

    def test_new_acked_lane_is_baseline_only(self):
        # First commit of a new benchmark: every lane is [new] and the
        # diff passes — the committed file becomes the baseline.
        report, regressions = compare(
            {}, collect_lanes({"x": {"acked_per_s_8": 3000.0}})
        )
        assert regressions == []
        assert any("[new]" in line for line in report)


class TestCompare:
    def test_no_regression_within_threshold(self):
        base = {"lane": 1000.0}
        _, regressions = compare(base, {"lane": 850.0}, threshold=0.20)
        assert regressions == []

    def test_regression_beyond_threshold(self):
        base = {"lane": 1000.0}
        report, regressions = compare(base, {"lane": 700.0}, threshold=0.20)
        assert len(regressions) == 1
        assert any("[REGRESS]" in line for line in report)

    def test_improvement_is_ok(self):
        _, regressions = compare({"lane": 1000.0}, {"lane": 5000.0})
        assert regressions == []

    def test_lower_is_better_rise_regresses(self):
        base = {"t": (1.0, False)}
        report, regressions = compare(base, {"t": (1.5, False)})
        assert len(regressions) == 1
        assert any("[REGRESS]" in line for line in report)

    def test_lower_is_better_drop_is_ok(self):
        _, regressions = compare({"t": (1.0, False)}, {"t": (0.4, False)})
        assert regressions == []

    def test_new_lane_is_baseline_only(self):
        report, regressions = compare({}, {"w_mode.incremental": 9e5})
        assert regressions == []
        assert any("[new]" in line for line in report)

    def test_missing_lane_does_not_fail(self):
        """Smoke runs measure a subset of the full-size lanes."""
        report, regressions = compare(
            {"heavy@20000": 1e5, "heavy@1000": 5e4}, {"heavy@1000": 5e4}
        )
        assert regressions == []
        assert any("[gone]" in line for line in report)


class TestMain:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", SAMPLE)
        assert main([base, base]) == 0
        assert "no lane regressed" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        regressed = json.loads(json.dumps(SAMPLE))
        lane = regressed["graph_maintenance"]["indexed"]["heavy@1000"]
        lane["ops_per_sec"] = 10000.0
        base = self._write(tmp_path / "base.json", SAMPLE)
        cur = self._write(tmp_path / "cur.json", regressed)
        assert main([base, cur]) == 1
        assert "[REGRESS]" in capsys.readouterr().out

    def test_exit_one_on_walltime_rise(self, tmp_path, capsys):
        slower = json.loads(json.dumps(SAMPLE))
        slower["recovery_telemetry"]["seconds_per_attempt"] = 0.1
        base = self._write(tmp_path / "base.json", SAMPLE)
        cur = self._write(tmp_path / "cur.json", slower)
        assert main([base, cur]) == 1
        assert "seconds_per_attempt" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        softer = json.loads(json.dumps(SAMPLE))
        lane = softer["graph_maintenance"]["indexed"]["heavy@1000"]
        lane["ops_per_sec"] = 30000.0  # -40%
        base = self._write(tmp_path / "base.json", SAMPLE)
        cur = self._write(tmp_path / "cur.json", softer)
        assert main([base, cur]) == 1
        assert main([base, cur, "--threshold", "0.5"]) == 0

    def test_missing_baseline_is_noop(self, tmp_path, capsys):
        cur = self._write(tmp_path / "cur.json", SAMPLE)
        assert main([str(tmp_path / "absent.json"), cur]) == 0
        assert "nothing to diff" in capsys.readouterr().out
