"""Property-based testing of the recoverable B-tree against a dict
model, including crash/recovery equivalence."""

import random

from tests.conftest import examples
from hypothesis import given, settings, strategies as st

from repro import RecoverableSystem, verify_recovered
from repro.domains import RecoverableBTree

#: (is_insert, key) command streams over a small key space to force
#: collisions, splits, borrows and merges.
commands = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=40)),
    min_size=1,
    max_size=120,
)


@given(commands=commands, capacity=st.sampled_from([3, 4, 5, 8]))
@settings(max_examples=examples(80), deadline=None)
def test_btree_matches_dict_model(commands, capacity):
    tree = RecoverableBTree(RecoverableSystem(), capacity=capacity)
    model = {}
    for is_insert, key in commands:
        if is_insert:
            value = f"v{key}".encode()
            tree.insert(key, value)
            model[key] = value
        else:
            tree.delete(key)
            model.pop(key, None)
    assert tree.items() == sorted(model.items())
    assert tree.check_structure() == len(model)
    for key in list(model)[:10]:
        assert tree.lookup(key) == model[key]


@given(
    commands=commands,
    capacity=st.sampled_from([4, 8]),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=examples(40), deadline=None)
def test_btree_crash_recovery_matches_model(commands, capacity, seed):
    """Interleave random purges, crash at the end, recover: the durable
    tree must equal the model (everything was forced, so nothing is
    lost)."""
    rng = random.Random(seed)
    system = RecoverableSystem()
    tree = RecoverableBTree(system, capacity=capacity)
    model = {}
    for is_insert, key in commands:
        if is_insert:
            value = f"v{key}".encode()
            tree.insert(key, value)
            model[key] = value
        else:
            tree.delete(key)
            model.pop(key, None)
        if rng.random() < 0.15:
            system.purge()
    system.log.force()
    system.crash()
    system.recover()
    verify_recovered(system)
    recovered = RecoverableBTree(system, capacity=capacity)
    assert recovered.items() == sorted(model.items())
    assert recovered.check_structure() == len(model)


@given(commands=commands)
@settings(max_examples=examples(30), deadline=None)
def test_btree_unforced_tail_loses_cleanly(commands):
    """Crash without forcing: some suffix of the command stream is
    lost, but the recovered tree still satisfies every structural
    invariant and equals the oracle over the durable history."""
    system = RecoverableSystem()
    tree = RecoverableBTree(system, capacity=4)
    # The tree bootstrap must be durable or nothing at all exists.
    system.log.force()
    for is_insert, key in commands:
        if is_insert:
            tree.insert(key, b"v")
        else:
            tree.delete(key)
    system.crash()
    system.recover()
    verify_recovered(system)
    if system.store.contains("bt:t:root") or system.cache.peek_object(
        "bt:t:root"
    ):
        recovered = RecoverableBTree(system, capacity=4)
        recovered.check_structure()
