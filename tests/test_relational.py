"""Tests for the relational domain (repro.domains.relational)."""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import CtasLoggingMode, RelationalStore
from repro.domains.relational import _apply_query


@pytest.fixture
def db():
    store = RelationalStore(RecoverableSystem())
    store.create_table(
        "orders",
        ["id", "customer", "amount"],
        [
            (1, "ada", 30),
            (2, "bob", 12),
            (3, "ada", 55),
            (4, "cyd", 7),
        ],
    )
    return store


class TestQueryEvaluator:
    TABLE = (("a", "b"), ((1, "x"), (2, "y"), (3, "x")))

    def test_projection(self):
        got = _apply_query(self.TABLE, ("b",), None, None)
        assert got == (("b",), (("x",), ("y",), ("x",)))

    def test_filter(self):
        got = _apply_query(self.TABLE, None, ("a", ">", 1), None)
        assert got[1] == ((2, "y"), (3, "x"))

    def test_order_by(self):
        got = _apply_query(self.TABLE, None, None, "b")
        assert got[1] == ((1, "x"), (3, "x"), (2, "y"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            _apply_query(self.TABLE, None, ("a", "~~", 1), None)

    def test_all_operators(self):
        for op_name, expected in [
            ("==", 1), ("!=", 2), ("<", 1), ("<=", 2), (">", 1), (">=", 2),
        ]:
            got = _apply_query(self.TABLE, None, ("a", op_name, 2), None)
            assert len(got[1]) == expected, op_name


class TestDDL:
    def test_create_and_select(self, db):
        assert db.table_exists("orders")
        assert db.row_count("orders") == 4
        assert db.columns("orders") == ("id", "customer", "amount")

    def test_insert_rows(self, db):
        db.insert_rows("orders", [(5, "bob", 99)])
        assert db.row_count("orders") == 5

    def test_insert_arity_checked(self, db):
        with pytest.raises(Exception):
            db.insert_rows("orders", [(6, "too-few")])

    def test_drop_table(self, db):
        db.drop_table("orders")
        assert not db.table_exists("orders")

    def test_select_where_order(self, db):
        rows = db.select(
            "orders",
            columns=("customer", "amount"),
            where=("customer", "==", "ada"),
            order_by="amount",
        )
        assert rows == [("ada", 30), ("ada", 55)]


class TestCtas:
    def test_ctas_derives_table(self, db):
        db.create_table_as(
            "big_orders", "orders", where=("amount", ">=", 30),
            order_by="amount",
        )
        assert db.select("big_orders") == [(1, "ada", 30), (3, "ada", 55)]

    def test_ctas_projection(self, db):
        db.create_table_as("names", "orders", columns=("customer",))
        assert db.columns("names") == ("customer",)

    def test_ctas_missing_source_fails(self, db):
        with pytest.raises(Exception):
            db.create_table_as("x", "nope")

    def test_logical_ctas_logs_no_table_contents(self):
        system = RecoverableSystem()
        db = RelationalStore(system)
        rows = [(i, b"payload" * 50) for i in range(200)]
        db.create_table("src", ["id", "blob"], rows)
        before = system.stats.log_value_bytes
        db.create_table_as("derived", "src", order_by="id")
        assert system.stats.log_value_bytes == before

    def test_physical_ctas_logs_everything(self):
        system = RecoverableSystem()
        db = RelationalStore(system, mode=CtasLoggingMode.PHYSICAL)
        rows = [(i, b"payload" * 50) for i in range(200)]
        db.create_table("src", ["id", "blob"], rows)
        before = system.stats.log_value_bytes
        db.create_table_as("derived", "src", order_by="id")
        assert system.stats.log_value_bytes - before > 200 * 350

    @pytest.mark.parametrize("mode", list(CtasLoggingMode))
    def test_modes_agree_on_result(self, mode):
        db = RelationalStore(RecoverableSystem(), mode=mode)
        db.create_table("t", ["k"], [(3,), (1,), (2,)])
        db.create_table_as("sorted_t", "t", order_by="k")
        assert db.select("sorted_t") == [(1,), (2,), (3,)]


class TestRecovery:
    def test_ctas_chain_recovers(self):
        system = RecoverableSystem()
        db = RelationalStore(system)
        db.create_table("base", ["k", "v"], [(i, i * i) for i in range(50)])
        db.create_table_as("evens", "base", where=("k", ">=", 25))
        db.create_table_as(
            "tops", "evens", where=("v", ">", 1000), order_by="v"
        )
        db.drop_table("evens")  # transient intermediate
        expected = db.select("tops")
        system.log.force()
        for _ in range(2):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = RelationalStore(system)
        assert recovered.select("tops") == expected
        assert not recovered.table_exists("evens")

    def test_dropped_intermediate_not_rederived(self):
        """The transient-table version of the Section 5 win: after
        installation + checkpoint, recovery never re-runs the CTAS of a
        dropped intermediate."""
        system = RecoverableSystem()
        db = RelationalStore(system)
        db.create_table("base", ["k"], [(i,) for i in range(100)])
        db.create_table_as("tmp", "base", where=("k", "<", 50))
        db.create_table_as("final", "tmp", order_by="k")
        db.drop_table("tmp")
        system.flush_all()
        system.checkpoint()
        system.crash()
        report = system.recover()
        verify_recovered(system)
        assert report.ops_redone == 0
