"""Client retry policy: backoff, retry-after hints, deadline budgets.

These tests drive :class:`DaemonClient` without sockets: the round
trip is stubbed with scripted responses and the policy gets fake
sleep/clock hooks, so every retry decision is deterministic and no
real time passes.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import DegradedModeError
from repro.serve.client import DaemonClient, RetryPolicy
from repro.serve.errors import (
    BackpressureError,
    BadRequestError,
    DeadlineExceededError,
    FencedError,
    ProtocolError,
    ServerFailedError,
    ServerUnavailableError,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


def scripted(client: DaemonClient, responses):
    """Replace the network round trip with a scripted response list.

    Each entry is a response dict or an exception instance to raise.
    """
    queue = list(responses)

    def _round_trip(message):
        assert queue, "client sent more attempts than scripted"
        entry = queue.pop(0)
        if isinstance(entry, Exception):
            raise entry
        response = dict(entry)
        response.setdefault("id", message["id"])
        return response

    client._round_trip = _round_trip
    client._disconnect = lambda: None
    return queue


def make_client(responses, **policy_kw):
    clock = FakeClock()
    policy_kw.setdefault("base_delay", 0.01)
    policy_kw.setdefault("jitter", 0.0)
    policy = RetryPolicy(
        sleep=clock.sleep, clock=clock, rng=random.Random(0), **policy_kw
    )
    client = DaemonClient("127.0.0.1", 1, policy=policy)
    remaining = scripted(client, responses)
    return client, clock, remaining


def reject(code, retry_after_ms=None, health="healthy"):
    error = {"code": code, "message": f"scripted {code}"}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    return {"ok": False, "health": health, "error": error}


OK = {"ok": True, "health": "healthy", "lsi": 5}


class TestRetryLoop:
    def test_succeeds_first_try(self):
        client, clock, _ = make_client([OK])
        response = client.request("put", obj="x", value="v")
        assert response["lsi"] == 5
        assert clock.sleeps == []

    def test_retries_backpressure_until_ok(self):
        client, clock, _ = make_client(
            [reject("BACKPRESSURE"), reject("BACKPRESSURE"), OK]
        )
        assert client.request("put", obj="x", value="v")["ok"]
        # Exponential: base, 2*base.
        assert clock.sleeps == [0.01, 0.02]

    def test_retry_after_hint_is_a_floor(self):
        client, clock, _ = make_client(
            [reject("BACKPRESSURE", retry_after_ms=500), OK]
        )
        client.request("put", obj="x", value="v")
        assert clock.sleeps == [0.5]

    def test_larger_backoff_wins_over_smaller_hint(self):
        client, clock, _ = make_client(
            [reject("UNAVAILABLE", retry_after_ms=1), OK],
            base_delay=0.2,
        )
        client.request("put", obj="x", value="v")
        assert clock.sleeps == [0.2]

    def test_attempts_exhaustion_reraises_typed_error(self):
        client, _, _ = make_client(
            [reject("BACKPRESSURE")] * 3, attempts=3
        )
        with pytest.raises(BackpressureError):
            client.request("put", obj="x", value="v")

    def test_transport_errors_retried_then_wrapped(self):
        client, _, _ = make_client(
            [OSError("refused")] * 2, attempts=2
        )
        with pytest.raises(ServerUnavailableError):
            client.request("ping")

    def test_transport_error_then_recovery(self):
        client, _, _ = make_client(
            [OSError("refused"), ProtocolError("eof mid-request"), OK]
        )
        assert client.request("get", obj="x")["ok"]

    def test_acked_writes_recorded(self):
        client, _, _ = make_client([OK, OK])
        client.request("put", obj="x", value="v")
        client.request("get", obj="x")
        assert len(client.acked) == 1
        assert client.acked[0]["lsi"] == 5


class TestTerminalErrors:
    def test_bad_request_raises_immediately(self):
        client, clock, remaining = make_client(
            [reject("BAD_REQUEST"), OK]
        )
        with pytest.raises(BadRequestError):
            client.request("put", obj="x", value="v")
        assert clock.sleeps == []
        assert len(remaining) == 1  # never consumed the second response

    def test_degraded_maps_to_degraded_mode_error(self):
        client, _, _ = make_client([reject("DEGRADED", health="degraded")])
        with pytest.raises(DegradedModeError):
            client.request("put", obj="x", value="v")

    def test_failed_maps_to_server_failed(self):
        client, _, _ = make_client([reject("FAILED", health="failed")])
        with pytest.raises(ServerFailedError):
            client.request("get", obj="x")

    def test_server_deadline_maps_to_deadline_error(self):
        client, _, _ = make_client([reject("DEADLINE")])
        with pytest.raises(DeadlineExceededError):
            client.request("put", obj="x", value="v")


class TestDeadlineBudget:
    def test_budget_exhaustion_raises_deadline_error(self):
        # Every answer is retryable, but the budget runs out first.
        client, clock, _ = make_client(
            [reject("BACKPRESSURE", retry_after_ms=600)] * 10,
            attempts=10,
            deadline=1.0,
        )
        with pytest.raises(DeadlineExceededError):
            client.request("put", obj="x", value="v")
        # The budget bounds total elapsed time: sleeps never exceed it.
        assert sum(clock.sleeps) <= 1.0 + 1e-9

    def test_sleep_clamped_to_remaining_budget(self):
        client, clock, _ = make_client(
            [reject("BACKPRESSURE", retry_after_ms=800)] * 3,
            attempts=3,
            deadline=1.0,
        )
        with pytest.raises(DeadlineExceededError):
            client.request("put", obj="x", value="v")
        assert clock.sleeps == [0.8, pytest.approx(0.2)]

    def test_no_deadline_means_attempts_budget_only(self):
        client, clock, _ = make_client(
            [reject("BACKPRESSURE", retry_after_ms=60_000), OK]
        )
        client.request("put", obj="x", value="v")
        assert clock.sleeps == [60.0]

    def test_deadline_forwarded_to_server(self):
        captured = {}

        def _round_trip(message):
            captured.update(message)
            return {"id": message["id"], "ok": True, "health": "healthy"}

        client = DaemonClient("127.0.0.1", 1, deadline_ms=250)
        client._round_trip = _round_trip
        client.request("get", obj="x")
        assert captured["deadline_ms"] == 250

    def test_explicit_deadline_overrides_default(self):
        captured = {}

        def _round_trip(message):
            captured.update(message)
            return {"id": message["id"], "ok": True, "health": "healthy"}

        client = DaemonClient("127.0.0.1", 1, deadline_ms=250)
        client._round_trip = _round_trip
        client.request("get", obj="x", deadline_ms=75)
        assert captured["deadline_ms"] == 75


def reject_shard(code, shard, retry_after_ms=None, health="healthy"):
    """A shard-labeled rejection, as the sharded daemon sends them."""
    response = reject(code, retry_after_ms=retry_after_ms, health=health)
    response["shard"] = shard
    return response


def ok_on(shard, **fields):
    response = {"ok": True, "health": "healthy", "lsi": 5, "shard": shard}
    response.update(fields)
    return response


class TestPerShardBackpressure:
    """Shard-scoped retry hints: one jammed shard must not slow the rest.

    The sharded daemon labels rejections with the shard they came
    from; the client keeps one backoff floor per shard (plus the
    object→shard map it learns from responses).  The regression these
    tests pin: a slow shard's ``retry_after_ms`` floor applies to
    requests routed to *that shard only* — before the fix the hint
    inflated the whole client's pause and a fast shard's traffic
    stalled behind it.
    """

    def test_shard_hint_floors_that_shard_not_the_pause(self):
        client, clock, _ = make_client(
            [reject_shard("BACKPRESSURE", shard=1, retry_after_ms=400),
             ok_on(1)],
        )
        client.request("put", obj="slow", value="v")
        # The rejection taught obj->shard and raised shard 1's floor;
        # the inter-attempt pause stays on the exponential schedule
        # (base 0.01), and the floor gate sleeps out the remainder
        # before the retry hits the same shard.
        assert clock.sleeps == pytest.approx([0.01, 0.39])
        # Success cleared the floor.
        assert client._shard_floors == {}
        assert client._obj_shards == {"slow": 1}

    def test_slow_shard_floor_skips_the_fast_shard(self):
        client, clock, _ = make_client(
            [
                ok_on(1),  # teach slow -> shard 1
                ok_on(0),  # teach fast -> shard 0
                reject_shard("BACKPRESSURE", shard=1, retry_after_ms=500),
                ok_on(0, lsi=6),
                ok_on(1, lsi=7),
            ],
            attempts=1,
        )
        client.request("put", obj="slow", value="v")
        client.request("put", obj="fast", value="v")
        # One attempt only: the rejection raises, leaving the floor up.
        with pytest.raises(BackpressureError):
            client.request("put", obj="slow", value="v")
        assert 1 in client._shard_floors
        before = list(clock.sleeps)
        # The fast shard's request does not wait the slow shard's floor.
        assert client.request("put", obj="fast", value="v")["lsi"] == 6
        assert clock.sleeps == before
        # The slow shard's own next request does.
        assert client.request("put", obj="slow", value="v")["lsi"] == 7
        assert clock.sleeps == before + [pytest.approx(0.5)]

    def test_shardless_hint_keeps_whole_client_behavior(self):
        client, clock, _ = make_client(
            [reject("BACKPRESSURE", retry_after_ms=500), OK]
        )
        client.request("put", obj="x", value="v")
        # Legacy behavior: the hint is the floor of the one pause.
        assert clock.sleeps == [0.5]
        assert client._shard_floors == {}

    def test_expired_floor_costs_nothing(self):
        client, clock, _ = make_client(
            [ok_on(1), ok_on(1)], attempts=1
        )
        client.request("put", obj="slow", value="v")
        client._shard_floors[1] = clock.now - 1.0  # already expired
        client.request("put", obj="slow", value="v")
        assert clock.sleeps == []
        assert client._shard_floors == {}

    def test_floor_wait_capped_by_deadline_budget(self):
        client, clock, _ = make_client(
            [reject_shard("BACKPRESSURE", shard=1, retry_after_ms=60_000)],
            attempts=3,
            deadline=1.0,
        )
        with pytest.raises(DeadlineExceededError):
            client.request("put", obj="slow", value="v")
        # No single sleep (pause or floor gate) exceeded the budget.
        assert all(s <= 1.0 + 1e-9 for s in clock.sleeps)
        assert clock.now <= 1.5

    def test_unrouted_requests_skip_the_floor_gate(self):
        client, clock, _ = make_client([ok_on(1), OK], attempts=1)
        client.request("put", obj="slow", value="v")
        client._shard_floors[1] = clock.now + 99.0
        # A request with no obj (ping/apply) has no learned shard and
        # must not trip over any floor.
        client.request("ping")
        assert clock.sleeps == []


def make_failover_client(responses, **policy_kw):
    """A client with one failover target, scripted like make_client."""
    clock = FakeClock()
    policy_kw.setdefault("base_delay", 0.01)
    policy_kw.setdefault("jitter", 0.0)
    policy = RetryPolicy(
        sleep=clock.sleep, clock=clock, rng=random.Random(0), **policy_kw
    )
    client = DaemonClient(
        "127.0.0.1", 1, failover=[("127.0.0.2", 2)], policy=policy
    )
    remaining = scripted(client, responses)
    return client, clock, remaining


class TestStaleConnectionRetry:
    """A connection reset on a *reused* socket is never the request's
    fault: the server may have drained and closed the idle connection
    between requests.  The client must retry once on a fresh
    connection without burning an attempt — and the raw OSError must
    never escape to the caller."""

    def test_reused_connection_reset_gets_free_retry(self):
        client, clock, _ = make_client(
            [ConnectionResetError("reset by peer"), OK], attempts=1
        )
        # Simulate an idle kept-alive connection from a prior request.
        client._sock = object()
        client._disconnect = lambda: setattr(client, "_sock", None)
        assert client.request("put", obj="x", value="v")["ok"]
        # Free of charge: no backoff, and attempts=1 still succeeded.
        assert clock.sleeps == []

    def test_free_retry_happens_at_most_once(self):
        # After the free retry the connection is fresh; a second
        # failure is a real one and burns attempts as usual.
        client, _, _ = make_client(
            [ConnectionResetError("reset"), OSError("refused")],
            attempts=1,
        )
        client._sock = object()
        client._disconnect = lambda: setattr(client, "_sock", None)
        with pytest.raises(ServerUnavailableError):
            client.request("put", obj="x", value="v")

    def test_reset_during_drain_is_wrapped_not_raised_raw(self):
        client, _, _ = make_client(
            [ConnectionResetError("reset by peer")] * 2, attempts=2
        )
        with pytest.raises(ServerUnavailableError) as err:
            client.request("put", obj="x", value="v")
        assert not isinstance(err.value, ConnectionResetError)


class TestFailover:
    def test_fresh_connect_failure_rotates(self):
        client, _, _ = make_failover_client(
            [OSError("refused"), OK], attempts=2
        )
        assert client.request("put", obj="x", value="v")["ok"]
        assert (client.host, client.port) == ("127.0.0.2", 2)

    def test_fenced_rotates_to_promoted_peer(self):
        client, _, _ = make_failover_client(
            [reject("FENCED"), OK], attempts=2
        )
        assert client.request("put", obj="x", value="v")["ok"]
        assert (client.host, client.port) == ("127.0.0.2", 2)

    def test_fenced_without_failover_is_terminal(self):
        client, _, _ = make_client([reject("FENCED"), OK], attempts=3)
        with pytest.raises(FencedError):
            client.request("put", obj="x", value="v")

    def test_unavailable_rotates_whole_server(self):
        client, _, _ = make_failover_client(
            [reject("UNAVAILABLE"), OK], attempts=2
        )
        assert client.request("put", obj="x", value="v")["ok"]
        assert (client.host, client.port) == ("127.0.0.2", 2)

    def test_backpressure_stays_on_the_same_target(self):
        # Transient load is not a role problem; hopping targets would
        # just thrash both servers.
        client, _, _ = make_failover_client(
            [reject("BACKPRESSURE"), OK], attempts=2
        )
        assert client.request("put", obj="x", value="v")["ok"]
        assert (client.host, client.port) == ("127.0.0.1", 1)

    def test_rotation_wraps_back_to_the_first_target(self):
        client, _, _ = make_failover_client(
            [OSError("a"), OSError("b"), OK], attempts=3
        )
        assert client.request("put", obj="x", value="v")["ok"]
        assert (client.host, client.port) == ("127.0.0.1", 1)

    def test_single_target_never_rotates(self):
        client, _, _ = make_client([OSError("refused"), OK], attempts=2)
        assert client.request("put", obj="x", value="v")["ok"]
        assert (client.host, client.port) == ("127.0.0.1", 1)
