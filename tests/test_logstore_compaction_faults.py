"""Compaction under injected faults: a crash at any compaction stage
must leave a reopenable directory whose rebuilt state equals the
pre-compaction state (segment-id ordering is the whole crash-safety
argument — see the logstore module docstring)."""

import os

import pytest

from repro.common.errors import SimulatedCrash
from repro.storage.faults import FaultKind, FaultModel, FaultSpec
from repro.storage.faultwrap import FaultyLogStructuredStore
from repro.storage.logstore import LogStructuredStableStore
from repro.storage.stable_store import StoredVersion


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "db")


def _populate(store):
    """A mixed history with plenty of dead bytes and a deletion."""
    for index in range(6):
        store.write(f"obj:{index % 3}", f"gen-{index}".encode(), index)
    store.write_many(
        {
            "obj:3": StoredVersion(b"batch-3", 10),
            "obj:4": StoredVersion(b"batch-4", 11),
        },
        atomic=True,
    )
    store.delete("obj:0")
    return {
        obj: (store.peek(obj).value, store.vsi_of(obj))
        for obj in sorted(store.object_ids())
    }


def _state(store):
    return {
        obj: (store.peek(obj).value, store.vsi_of(obj))
        for obj in sorted(store.object_ids())
    }


class TestCrashMidCompaction:
    @pytest.mark.parametrize("stage", ["copied", "indexed", "retired"])
    def test_crash_at_stage_preserves_state(self, dbdir, stage):
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        expected = _populate(store)

        def die(reached):
            if reached == stage:
                raise SimulatedCrash(f"killed at compaction stage {reached}")

        store.compaction_hook = die
        with pytest.raises(SimulatedCrash):
            store.compact()
        again = LogStructuredStableStore(dbdir)
        assert _state(again) == expected
        # No damage was involved: the survivor must not have widened.
        assert again.media_redo_pending is None

    def test_crash_before_retirement_keeps_old_segments(self, dbdir):
        """Until old segments are unlinked they remain authoritative:
        the copy only duplicates what they already replay to."""
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        _populate(store)
        before = store.segment_count()

        def die(reached):
            if reached == "indexed":
                raise SimulatedCrash("pre-retirement")

        store.compaction_hook = die
        with pytest.raises(SimulatedCrash):
            store.compact()
        names = os.listdir(os.path.join(dbdir, "segments"))
        # Old segments plus the completed copy are all still on disk.
        assert len(names) == before + 1

    def test_torn_copy_segment_is_discarded(self, dbdir):
        """A crash mid-copy leaves a half-written copy segment; its torn
        tail is truncated at reopen and the old segments still replay to
        the exact pre-compaction state."""
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        expected = _populate(store)

        def die(reached):
            if reached == "copied":
                raise SimulatedCrash("mid-copy")

        store.compaction_hook = die
        with pytest.raises(SimulatedCrash):
            store.compact()
        segments = sorted(os.listdir(os.path.join(dbdir, "segments")))
        copy_path = os.path.join(dbdir, "segments", segments[-1])
        size = os.path.getsize(copy_path)
        with open(copy_path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
        again = LogStructuredStableStore(dbdir)
        assert _state(again) == expected

    def test_interrupted_compaction_can_rerun(self, dbdir):
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        expected = _populate(store)

        def die(reached):
            if reached == "copied":
                raise SimulatedCrash("first attempt dies")

        store.compaction_hook = die
        with pytest.raises(SimulatedCrash):
            store.compact()
        again = LogStructuredStableStore(dbdir, auto_compact=False)
        copied = again.compact()
        assert copied == len(expected)
        assert again.segment_count() == 1
        assert _state(LogStructuredStableStore(dbdir)) == expected


class TestFaultyAppends:
    def test_torn_append_loses_only_the_unacked_write(self, dbdir):
        seed = LogStructuredStableStore(dbdir)
        seed.write("x", b"stable", 1)
        model = FaultModel(
            [FaultSpec(0, FaultKind.TORN, crash=True)]
        )
        store = FaultyLogStructuredStore(dbdir, model)
        with pytest.raises(SimulatedCrash):
            store.write("x", b"torn-away", 2)
        again = LogStructuredStableStore(dbdir)
        assert again.peek("x").value == b"stable"
        assert again.vsi_of("x") == 1
        # Torn tail detected and truncated; the widening applies.
        assert again.stats.checksum_failures == 1

    def test_transient_append_is_retried_invisibly(self, dbdir):
        model = FaultModel([FaultSpec(0, FaultKind.TRANSIENT, times=2)])
        store = FaultyLogStructuredStore(dbdir, model)
        store.write("x", b"v", 1)
        assert store.stats.fault_retries >= 2
        assert LogStructuredStableStore(dbdir).peek("x").value == b"v"

    def test_corrupt_append_is_caught_by_scrub(self, dbdir):
        model = FaultModel([FaultSpec(0, FaultKind.CORRUPT)])
        store = FaultyLogStructuredStore(dbdir, model)
        store.write("x", b"rotted", 1)
        assert store.scrub() == ["x"]

    def test_torn_append_does_not_skew_later_offsets(self, dbdir):
        """After a torn append the next append lands at the device's
        real tail, so the rebuilt index still parses every later frame
        (the half-frame is skipped by resync)."""
        model = FaultModel([FaultSpec(0, FaultKind.TORN)])
        store = FaultyLogStructuredStore(dbdir, model)
        store.write("a", b"torn", 1)
        store.write("b", b"after", 2)
        again = LogStructuredStableStore(dbdir)
        assert again.peek("b").value == b"after"
        assert not again.contains("a") or again.peek("a").value == b"torn"

    def test_compaction_runs_under_the_faulty_wrapper(self, dbdir):
        store = FaultyLogStructuredStore(
            dbdir, FaultModel(), auto_compact=False
        )
        for index in range(10):
            store.write("x", f"v{index}".encode(), index)
        assert store.compact() == 1
        assert LogStructuredStableStore(dbdir).peek("x").value == b"v9"
