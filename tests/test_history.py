"""Unit tests for histories and conflict structure (repro.core.history)."""

from repro.core.history import History
from repro.core.operation import Operation, OpKind


def _op(name, reads, writes):
    return Operation(
        name, OpKind.LOGICAL, reads=set(reads), writes=set(writes), fn="f"
    )


class TestAppend:
    def test_op_ids_positional(self):
        history = History()
        a = history.append(_op("a", [], ["x"]))
        b = history.append(_op("b", ["x"], ["y"]))
        assert (a.op_id, b.op_id) == (0, 1)
        assert len(history) == 2
        assert history[1] is b

    def test_constructor_appends(self):
        ops = [_op("a", [], ["x"]), _op("b", [], ["y"])]
        history = History(ops)
        assert history.operations == tuple(ops)


class TestIndexes:
    def test_writers_and_readers(self):
        history = History()
        a = history.append(_op("a", [], ["x"]))
        b = history.append(_op("b", ["x"], ["x", "y"]))
        assert history.writers_of("x") == [a, b]
        assert history.readers_of("x") == [b]
        assert history.writers_of("ghost") == []

    def test_last_writer(self):
        history = History()
        a = history.append(_op("a", [], ["x"]))
        b = history.append(_op("b", ["x"], ["x"]))
        assert history.last_writer("x") is b
        assert history.last_writer("x", within={a}) is a
        assert history.last_writer("x", within=set()) is None

    def test_accessors_in_order(self):
        history = History()
        a = history.append(_op("a", [], ["x"]))
        b = history.append(_op("b", ["x"], ["y"]))
        c = history.append(_op("c", [], ["x"]))
        assert history.accessors_in_order("x") == [a, b, c]


class TestConflictEdges:
    def test_edges_only_for_conflicts(self):
        history = History()
        a = history.append(_op("a", [], ["x"]))
        b = history.append(_op("b", [], ["y"]))
        c = history.append(_op("c", ["x", "y"], ["z"]))
        edges = set(
            (src.name, dst.name) for src, dst in history.conflict_edges()
        )
        assert edges == {("a", "c"), ("b", "c")}


class TestPrefix:
    def test_prefix_copies_first_n(self):
        history = History()
        ops = [history.append(_op(f"o{i}", [], ["x"])) for i in range(4)]
        sub = history.prefix(2)
        assert list(sub) == ops[:2]
        assert len(sub) == 2
