"""The WriteGraphEngine protocol, make_engine, and the engine lifecycle.

Covers the API-surface guarantees of the engine redesign:

* every engine implementation satisfies the runtime-checkable protocol;
* ``make_engine`` maps every GraphMode (enum or string) to the right
  engine class;
* the cache manager holds one live engine per mode and never rebuilds
  it — asserted through the ``stats()["full_rebuilds"]`` hook over a
  long mixed-workload run in both modes;
* the deprecated ``WriteGraph(installation)`` /
  ``CacheManager.write_graph()`` shims are gone (they warned for one
  release) and nothing in the library emits DeprecationWarning.
"""

from __future__ import annotations

import warnings

import pytest

from repro import (
    BatchWriteGraph,
    CacheConfig,
    GraphMode,
    IncrementalWriteGraph,
    MultiObjectStrategy,
    RecoverableSystem,
    RefinedWriteGraph,
    SystemConfig,
    WriteGraphEngine,
    make_engine,
    verify_recovered,
)
from repro.core._reference import ReferenceWriteGraph
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)

HEAVY_MIX = dict(w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3)


def _ops(operations=120, objects=8, seed=11, **mix):
    config = LogicalWorkloadConfig(
        objects=objects, operations=operations, object_size=16,
        **(mix or HEAVY_MIX),
    )
    history = History()
    out = []
    for op in LogicalWorkload(config, seed=seed).operations():
        history.append(op)
        op.lsi = op.op_id + 1
        out.append(op)
    return out


def _rw_system() -> RecoverableSystem:
    system = RecoverableSystem()
    register_workload_functions(system.registry)
    return system


def _w_system(**cache_kwargs) -> RecoverableSystem:
    system = RecoverableSystem(SystemConfig(cache=CacheConfig(
        graph_mode=GraphMode.W,
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        **cache_kwargs,
    )))
    register_workload_functions(system.registry)
    return system


class TestProtocol:
    @pytest.mark.parametrize("engine_cls", [
        RefinedWriteGraph, IncrementalWriteGraph, ReferenceWriteGraph,
    ])
    def test_engines_satisfy_protocol(self, engine_cls):
        assert isinstance(engine_cls(), WriteGraphEngine)

    def test_batch_graph_is_not_a_live_engine(self):
        """BatchWriteGraph shares the query surface but is a one-shot
        construction: no add_operation, so it fails the protocol check
        — you cannot accidentally hand it to the cache manager."""
        graph = BatchWriteGraph(InstallationGraph(_ops(operations=20)))
        assert not isinstance(graph, WriteGraphEngine)
        for member in (
            "minimal_nodes", "remove_node", "holder_of", "node_of",
            "flush_set_sizes", "stats", "edges", "is_acyclic",
        ):
            assert callable(getattr(graph, member))

    def test_make_engine_by_mode(self):
        assert type(make_engine(GraphMode.RW)) is RefinedWriteGraph
        assert type(make_engine(GraphMode.W)) is IncrementalWriteGraph

    def test_make_engine_by_string(self):
        assert type(make_engine("rW")) is RefinedWriteGraph
        assert type(make_engine("W")) is IncrementalWriteGraph

    def test_make_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_engine("refined")

    def test_stats_shape(self):
        for mode in (GraphMode.RW, GraphMode.W):
            engine = make_engine(mode)
            stats = engine.stats()
            for key in (
                "engine", "operations_added", "live_nodes",
                "cycle_collapses", "full_rebuilds",
            ):
                assert key in stats, (mode, key)
            assert stats["full_rebuilds"] == 0


class TestCacheManagerEngine:
    @pytest.mark.parametrize("make_system", [_rw_system, _w_system])
    def test_no_full_rebuilds_across_mixed_run(self, make_system):
        """The acceptance gate: a long E4-mix run with interleaved
        purges performs zero full graph rebuilds in either mode."""
        system = make_system()
        for count, op in enumerate(_ops(operations=400, seed=3), start=1):
            system.execute(op)
            if count % 16 == 0:
                system.purge()
        stats = system.engine.stats()
        assert stats["full_rebuilds"] == 0
        assert stats["operations_added"] >= 400
        system.flush_all()
        assert system.engine.stats()["full_rebuilds"] == 0
        assert len(system.engine) == 0

    def test_engine_survives_purges(self):
        system = _w_system()
        engine = system.engine
        for op in _ops(operations=60, seed=9):
            system.execute(op)
        system.flush_all()
        assert system.engine is engine, "engine must not be rebuilt"

    def test_w_mode_end_to_end_recovery(self):
        system = _w_system()
        for op in _ops(operations=80, seed=21):
            system.execute(op)
        system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        assert type(system.engine) is IncrementalWriteGraph

    def test_engine_matches_mode(self):
        assert type(_rw_system().engine) is RefinedWriteGraph
        assert type(_w_system().engine) is IncrementalWriteGraph


class TestDeprecatedNamesRemoved:
    def test_write_graph_shim_is_gone(self):
        """The deprecation window closed: the names no longer import."""
        with pytest.raises(ImportError):
            from repro import WriteGraph  # noqa: F401
        with pytest.raises(ImportError):
            from repro.core.write_graph import WriteGraph  # noqa: F401

    def test_write_graph_method_is_gone(self):
        system = RecoverableSystem()
        assert not hasattr(system.cache, "write_graph")

    def test_no_internal_callers_warn(self):
        """Driving both modes end to end emits no DeprecationWarning:
        nothing inside the library uses the deprecated names."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for make_system in (_rw_system, _w_system):
                system = make_system()
                for op in _ops(operations=60, seed=13):
                    system.execute(op)
                system.purge()
                system.crash()
                system.recover()
                system.flush_all()
