"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

#: Release-soak knob: REPRO_SOAK=5 multiplies every property test's
#: example budget by 5.  The default keeps the suite fast.
SOAK = max(1, int(os.environ.get("REPRO_SOAK", "1")))


def examples(base: int) -> int:
    """Example budget for a property test, scaled by the soak knob."""
    return base * SOAK

from repro import (
    CacheConfig,
    GraphMode,
    MultiObjectStrategy,
    Operation,
    OpKind,
    RecoverableSystem,
    SystemConfig,
)
from repro.storage import FlushTransaction, ShadowInstall
from repro.workloads import register_workload_functions


def physical(obj: str, data: bytes, name: str = "") -> Operation:
    """A blind physical write of ``data`` to ``obj``."""
    return Operation(
        name or f"wp({obj})",
        OpKind.PHYSICAL,
        reads=set(),
        writes={obj},
        payload={obj: data},
    )


def logical(
    name: str, fn: str, reads: set, writes: set, params: tuple = ()
) -> Operation:
    """A logical operation shell."""
    return Operation(
        name, OpKind.LOGICAL, reads=reads, writes=writes, fn=fn, params=params
    )


def physiological(name: str, obj: str, fn: str, params: tuple) -> Operation:
    """A physiological X <- f(X) operation."""
    return Operation(
        name,
        OpKind.PHYSIOLOGICAL,
        reads={obj},
        writes={obj},
        fn=fn,
        params=params,
    )


@pytest.fixture
def system() -> RecoverableSystem:
    """A default system (rW graph, identity writes, generalized REDO)
    with the workload transforms registered."""
    sys_ = RecoverableSystem()
    register_workload_functions(sys_.registry)
    return sys_


CACHE_CONFIGS = {
    "rw-identity": lambda: CacheConfig(),
    "rw-shadow": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=ShadowInstall(),
    ),
    "rw-flushtxn": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=FlushTransaction(),
    ),
    "w-shadow": lambda: CacheConfig(
        graph_mode=GraphMode.W,
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=ShadowInstall(),
    ),
}


@pytest.fixture(params=sorted(CACHE_CONFIGS))
def any_cache_system(request) -> RecoverableSystem:
    """A system parameterized over all supported cache configurations."""
    config = SystemConfig(cache=CACHE_CONFIGS[request.param]())
    sys_ = RecoverableSystem(config)
    register_workload_functions(sys_.registry)
    return sys_
