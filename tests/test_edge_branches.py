"""Focused tests for less-travelled branches across modules."""

import pytest

from repro import (
    Operation,
    OpKind,
    RecoverableSystem,
    BatchWriteGraph,
    InstallationGraph,
)
from repro.core.explain import find_explanation
from repro.core.functions import default_registry
from repro.core.history import History
from repro.core.oracle import Oracle
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.core.state_identifiers import DirtyObjectTable
from tests.conftest import logical, physical


class TestFindExplanationCandidates:
    def test_candidates_restrict_search(self):
        history = History()
        init = history.append(physical("x", b"v"))
        cp = history.append(
            logical("cp", "copy", {"x"}, {"y"}, ("x", "y"))
        )
        graph = InstallationGraph(list(history))
        oracle = Oracle(default_registry())
        # Only cp may be uninstalled; init is taken as installed, so
        # the state must show x = v.
        state = {"x": b"v"}
        found = find_explanation(
            history, graph, state, oracle, candidates=[cp]
        )
        assert found is not None
        assert init in found
        # With the wrong stable x and init forced-installed, no
        # explanation exists within the candidate space.
        bad = find_explanation(
            history, graph, {"x": b"wrong"}, oracle, candidates=[cp]
        )
        assert bad is None


class TestHolderOf:
    def test_holder_tracks_last_writer_node(self):
        graph = RefinedWriteGraph()
        first = physical("x", b"1")
        second = physical("x", b"2")
        first.lsi, second.lsi = 1, 2
        graph.add_operation(first)
        assert graph.holder_of("x") is graph.node_of(first)
        graph.add_operation(second)
        assert graph.holder_of("x") is graph.node_of(second)
        assert graph.holder_of("ghost") is None

    def test_holder_cleared_on_install(self):
        graph = RefinedWriteGraph()
        op = physical("x", b"1")
        op.lsi = 1
        graph.add_operation(op)
        graph.remove_node(graph.node_of(op))
        assert graph.holder_of("x") is None

    def test_edges_iteration(self):
        graph = RefinedWriteGraph()
        a = Operation(
            "a", OpKind.LOGICAL, reads={"x"}, writes={"y"}, fn="f"
        )
        b = physical("x", b"2")
        a.lsi, b.lsi = 1, 2
        graph.add_operation(a)
        graph.add_operation(b)
        edges = list(graph.edges())
        assert len(edges) == 1
        src, dst = edges[0]
        assert a in src.ops and b in dst.ops


class TestWriteGraphEdges:
    def test_edges_iteration_matches_successors(self):
        history = History()
        a = history.append(
            logical("a", "f", {"x"}, {"y"})
        )
        b = history.append(physical("x", b"v"))
        graph = BatchWriteGraph(InstallationGraph(list(history)))
        edges = list(graph.edges())
        assert len(edges) == 1
        assert edges[0][1] is graph.node_of(b)


class TestDirtyTableItems:
    def test_items_iteration_snapshot(self):
        table = DirtyObjectTable({"a": 1, "b": 2})
        listed = dict(table.items())
        assert listed == {"a": 1, "b": 2}
        # Iteration works over a snapshot; mutating during it is safe.
        for obj, _rsi in table.items():
            table.remove(obj)
        assert len(table) == 0


class TestKernelOddities:
    def test_flush_all_counts_installs(self):
        system = RecoverableSystem()
        for index in range(3):
            system.execute(physical(f"o{index}", b"v"))
        installed = system.flush_all()
        assert installed == 3

    def test_oracle_with_initial_state(self):
        system = RecoverableSystem()
        oracle = system.oracle(initial={"seed": b"s"})
        assert oracle.initial == {"seed": b"s"}

    def test_stable_values_snapshot(self):
        system = RecoverableSystem()
        system.execute(physical("x", b"v"))
        system.flush_all()
        values = system.stable_values()
        assert values == {"x": b"v"}

    def test_peek_uncached_object(self):
        system = RecoverableSystem()
        system.execute(physical("x", b"v"))
        system.flush_all()
        system.cache.evict("x")
        assert system.peek("x") == b"v"
        # peek never counted an object read.
        reads_before = system.stats.object_reads
        system.peek("x")
        assert system.stats.object_reads == reads_before


class TestHistoryEdgeCases:
    def test_last_writer_none_for_unwritten(self):
        history = History()
        assert history.last_writer("ghost") is None

    def test_accessors_deduplicated(self):
        history = History()
        op = history.append(
            logical("rw", "f", {"x"}, {"x"})
        )
        assert history.accessors_in_order("x") == [op]


class TestCheckpointEmptyTruncate:
    def test_truncate_with_clean_system(self):
        system = RecoverableSystem()
        system.execute(physical("x", b"v"))
        system.flush_all()
        system.checkpoint(truncate=True)
        system.checkpoint(truncate=True)  # idempotent on a clean system
        system.crash()
        system.recover()
        assert system.read("x") == b"v"
