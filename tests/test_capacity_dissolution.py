"""Regression tests for capacity enforcement interacting with
identity-write dissolution (a nested purge must not install the node
being dissolved)."""

import random

import pytest

from repro import (
    CacheConfig,
    Operation,
    OpKind,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.cache.policies import PeelHottest


def _multi_system(capacity=3):
    system = RecoverableSystem(
        SystemConfig(
            cache=CacheConfig(capacity=capacity, victim_policy=PeelHottest())
        )
    )
    system.registry.register(
        "multi",
        lambda reads, *objs: {
            obj: bytes([sum(map(ord, obj)) % 256]) * 16 for obj in objs
        },
    )
    return system


def _multi_op(step, targets, exposed):
    return Operation(
        f"multi#{step}",
        OpKind.LOGICAL,
        reads=set(targets) if exposed else set(),
        writes=set(targets),
        fn="multi",
        params=tuple(targets),
    )


class TestCapacityPlusDissolution:
    def test_multi_writes_under_tiny_capacity(self):
        """Multi-object writes + capacity-3 cache: every execute may
        trigger enforcement, which may purge, which may dissolve —
        the reentrancy path."""
        system = _multi_system()
        objects = [f"m{i}" for i in range(6)]
        rng = random.Random(42)
        for step in range(40):
            targets = rng.sample(objects, rng.choice([1, 2, 3]))
            system.execute(
                _multi_op(step, targets, exposed=rng.random() < 0.4)
            )
            if rng.random() < 0.3:
                system.log.force()
            if rng.random() < 0.2:
                system.purge()
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_variants(self, seed):
        system = _multi_system(capacity=2)
        objects = [f"m{i}" for i in range(5)]
        rng = random.Random(seed)
        for step in range(25):
            targets = rng.sample(objects, rng.choice([1, 2]))
            system.execute(
                _multi_op(step, targets, exposed=rng.random() < 0.5)
            )
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)
