"""Unit tests for graph helpers (repro.core.graph_utils)."""

from repro.core.graph_utils import UnionFind, strongly_connected_components


class TestUnionFind:
    def test_singletons(self):
        finder = UnionFind()
        finder.add("a")
        finder.add("b")
        assert finder.find("a") != finder.find("b")
        assert sorted(map(sorted, finder.classes())) == [["a"], ["b"]]

    def test_union_merges(self):
        finder = UnionFind()
        finder.union("a", "b")
        finder.union("b", "c")
        assert finder.find("a") == finder.find("c")
        assert len(finder.classes()) == 1

    def test_find_adds_implicitly(self):
        finder = UnionFind()
        assert finder.find("new") == "new"

    def test_disjoint_groups(self):
        finder = UnionFind()
        finder.union(1, 2)
        finder.union(3, 4)
        finder.add(5)
        classes = sorted(map(sorted, finder.classes()))
        assert classes == [[1, 2], [3, 4], [5]]


class TestSCC:
    def test_acyclic_all_singletons(self):
        succ = {"a": {"b"}, "b": {"c"}, "c": set()}
        sccs = strongly_connected_components(["a", "b", "c"], succ)
        assert sorted(map(sorted, sccs)) == [["a"], ["b"], ["c"]]

    def test_two_cycle(self):
        succ = {"a": {"b"}, "b": {"a"}}
        sccs = strongly_connected_components(["a", "b"], succ)
        assert sorted(map(sorted, sccs)) == [["a", "b"]]

    def test_cycle_plus_tail(self):
        succ = {"a": {"b"}, "b": {"c"}, "c": {"a"}, "d": {"a"}}
        sccs = strongly_connected_components(["a", "b", "c", "d"], succ)
        groups = sorted(map(sorted, sccs))
        assert ["a", "b", "c"] in groups
        assert ["d"] in groups

    def test_self_loop_is_singleton_scc(self):
        succ = {"a": {"a"}}
        sccs = strongly_connected_components(["a"], succ)
        assert sccs == [{"a"}]

    def test_emission_order_reverse_topological(self):
        # Tarjan emits SCCs so that successors come before predecessors.
        succ = {"a": {"b"}, "b": set()}
        sccs = strongly_connected_components(["a", "b"], succ)
        assert sccs.index({"b"}) < sccs.index({"a"})

    def test_missing_successor_entries_tolerated(self):
        sccs = strongly_connected_components(["a", "b"], {"a": {"b"}})
        assert len(sccs) == 2

    def test_large_chain_no_recursion_limit(self):
        n = 5000
        succ = {i: {i + 1} for i in range(n)}
        succ[n] = set()
        sccs = strongly_connected_components(list(range(n + 1)), succ)
        assert len(sccs) == n + 1
