"""Tests for explainable states (repro.core.explain) — the executable
Section 2 definitions and Theorem 1."""

import pytest

from repro.core.explain import (
    exposed_objects,
    explains,
    extend,
    find_explanation,
    is_prefix_set,
)
from repro.core.functions import default_registry
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.core.operation import Operation, OpKind
from repro.core.oracle import Oracle


def _physical(name, obj, data):
    return Operation(
        name, OpKind.PHYSICAL, reads=set(), writes={obj}, payload={obj: data}
    )


def _copy(name, src, dst):
    return Operation(
        name,
        OpKind.LOGICAL,
        reads={src},
        writes={dst},
        fn="copy",
        params=(src, dst),
    )


@pytest.fixture
def setting():
    """init x; copy x->y; overwrite x (blind)."""
    history = History()
    init = history.append(_physical("init", "x", b"one"))
    cp = history.append(_copy("cp", "x", "y"))
    blind = history.append(_physical("blind", "x", b"two"))
    oracle = Oracle(default_registry())
    graph = InstallationGraph(list(history))
    return history, graph, oracle, (init, cp, blind)


class TestPrefixSets:
    def test_downward_closed(self, setting):
        history, graph, oracle, (init, cp, blind) = setting
        assert is_prefix_set(set(), graph)
        assert is_prefix_set({init}, graph)
        assert is_prefix_set({init, cp}, graph)

    def test_violation_detected(self, setting):
        history, graph, oracle, (init, cp, blind) = setting
        # cp reads x which blind writes: edge cp -> blind, so {blind}
        # alone is not downward closed... blind's predecessor is cp.
        assert graph.predecessors(blind) == {cp}
        assert not is_prefix_set({init, blind}, graph)


class TestExposedObjects:
    def test_all_installed_everything_exposed(self, setting):
        history, graph, oracle, ops = setting
        assert exposed_objects(history, set(ops)) == {"x", "y"}

    def test_blind_write_unexposes(self, setting):
        history, graph, oracle, (init, cp, blind) = setting
        # With init+cp installed, the minimal uninstalled accessor of x
        # is blind, which writes x without reading it: x is unexposed.
        exposed = exposed_objects(history, {init, cp})
        assert "x" not in exposed
        assert "y" in exposed

    def test_reader_exposes(self, setting):
        history, graph, oracle, (init, cp, blind) = setting
        # With only init installed, cp (reads x) is minimal uninstalled
        # accessor of x: x is exposed.  y's minimal accessor writes it
        # blindly: unexposed.
        exposed = exposed_objects(history, {init})
        assert "x" in exposed
        assert "y" not in exposed


class TestExplains:
    def test_full_installation_explains_final_state(self, setting):
        history, graph, oracle, ops = setting
        state = {"x": b"two", "y": b"one"}
        assert explains(history, set(ops), state, oracle)

    def test_partial_installation(self, setting):
        history, graph, oracle, (init, cp, blind) = setting
        # init+cp installed: y must be b"one"; x is unexposed, any value.
        assert explains(
            history, {init, cp}, {"x": b"garbage", "y": b"one"}, oracle
        )
        assert not explains(
            history, {init, cp}, {"x": b"one", "y": b"wrong"}, oracle
        )

    def test_empty_installation_explains_empty_state(self, setting):
        history, graph, oracle, ops = setting
        # Nothing installed: x's minimal uninstalled accessor (init)
        # writes blindly, y's too: both unexposed, any state explained.
        assert explains(history, set(), {"x": b"junk"}, oracle)


class TestFindExplanation:
    def test_finds_leading_edge(self, setting):
        history, graph, oracle, (init, cp, blind) = setting
        state = {"x": b"garbage", "y": b"one"}
        found = find_explanation(history, graph, state, oracle)
        assert found is not None
        assert explains(history, found, state, oracle)

    def test_unexposed_junk_is_explainable(self, setting):
        history, graph, oracle, (init, cp, blind) = setting
        # y holds a value no prefix produces — but with I = {init}, y's
        # minimal uninstalled accessor (cp) writes it blindly, so y is
        # unexposed and ANY stable junk is explainable: replaying cp
        # regenerates it.  This is the heart of the paper's relaxation.
        state = {"x": b"one", "y": b"never-written"}
        found = find_explanation(history, graph, state, oracle)
        assert found is not None
        assert "y" not in exposed_objects(history, found)

    def test_unexplainable_returns_none(self):
        # x's only operation reads x (exposed under every explanation),
        # so a stable value that matches no prefix is unexplainable.
        from repro.core.functions import FunctionRegistry

        registry = FunctionRegistry()
        registry.register(
            "bump", lambda reads, o: {o: (reads[o] or b"") + b"!"}
        )
        oracle = Oracle(registry)
        history = History()
        touch = history.append(
            Operation(
                "touch",
                OpKind.PHYSIOLOGICAL,
                reads={"x"},
                writes={"x"},
                fn="bump",
                params=("x",),
            )
        )
        graph = InstallationGraph(list(history))
        state = {"x": b"junk-neither-initial-nor-bumped"}
        assert find_explanation(history, graph, state, oracle) is None


class TestTheorem1:
    def test_installing_minimal_preserves_explanation(self, setting):
        """Theorem 1: if I explains S and O is minimal uninstalled,
        extend(I, O) explains S after applying O."""
        history, graph, oracle, ops = setting
        installed = set()
        state = {}
        for _round in range(len(ops)):
            minimal = graph.minimal_operations(excluding=installed)
            assert minimal, "acyclic graph must always have minimal ops"
            op = minimal[0]
            # Apply O to the state (reads resolved against the state).
            from repro.core.operation import execute_transform

            reads = {obj: state.get(obj) for obj in op.reads}
            state.update(execute_transform(op, reads, oracle.registry))
            installed = extend(installed, op)
            assert explains(history, installed, state, oracle)
