"""Torture v4 (shard-kill live fire): seeded runs must audit clean.

The harness boots a sharded daemon over fault-injecting storage,
drives concurrent clients (a fraction of requests cross-shard), kills
one shard's worker mid-load, requires the survivors to keep acking
during the outage, then revives the victim and audits: every acked
write is present at (or past) its acked state, and the fence audit
shows no conflicting copies.  CI runs a larger campaign; here a few
seeds keep the tier-1 suite fast.
"""

from __future__ import annotations

import os

import pytest

from repro.serve import ShardLiveFireConfig, ShardLiveFireHarness


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seeded_run_is_lossless(seed):
    outcome = ShardLiveFireHarness(ShardLiveFireConfig()).run(seed)
    assert outcome.ok, (outcome.error, outcome.losses)
    assert outcome.losses == []
    assert outcome.acked > 0
    assert outcome.fences_conflicting == 0


def test_survivors_ack_during_outage():
    # Aggregated over a few seeds: the harness requires sentinel acks
    # from every surviving shard *while* the victim is down, so any
    # run that completes proves the partial-outage property.
    report = ShardLiveFireHarness(ShardLiveFireConfig()).campaign(
        runs=3, seed=10
    )
    assert report.failures() == []
    assert sum(o.survivor_acks_during_outage for o in report.outcomes) > 0
    assert "torture v4" in report.summary()


def test_cross_shard_traffic_is_exercised():
    config = ShardLiveFireConfig(p_cross=0.5, requests_per_client=20)
    outcome = ShardLiveFireHarness(config).run(3)
    assert outcome.ok, outcome.error
    assert outcome.cross_acked > 0
    assert outcome.fences_complete > 0


def test_campaign_over_logstore_backend(tmp_path):
    # The same kill-and-audit contract with each shard's store swapped
    # for the log-structured backend (PR 8): per-shard roots, the
    # backend's recommended cache config, and full cleanup after.
    config = ShardLiveFireConfig(
        store_backend="logstore",
        store_root=str(tmp_path / "v4-logstore"),
        clients=2,
        requests_per_client=6,
    )
    report = ShardLiveFireHarness(config).campaign(runs=2, seed=5)
    assert report.failures() == []
    assert report.total_acked > 0
    assert report.total_losses == 0
    # The harness cleans up the per-run store directories it created.
    assert os.listdir(str(tmp_path / "v4-logstore")) == []


def test_unknown_store_backend_fails_fast():
    config = ShardLiveFireConfig(store_backend="no-such-backend")
    with pytest.raises(ValueError):
        ShardLiveFireHarness(config).run(0)
