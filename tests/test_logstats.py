"""Tests for log composition analytics (repro.analysis.logstats)."""

from repro import RecoverableSystem
from repro.analysis import analyze_log
from repro.domains import RecoverableFileSystem
from tests.conftest import logical, physical


def _loaded_system():
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)
    fs.write_file("a", b"x" * 1000)
    fs.copy("a", "b")
    fs.sort("a", "c")
    system.flush_all()
    system.checkpoint()
    return system


class TestAnalyzeLog:
    def test_empty_log(self):
        breakdown = analyze_log(RecoverableSystem().log)
        assert breakdown.total_bytes() == 0
        assert breakdown.overhead_fraction() == 0.0

    def test_record_types_counted(self):
        breakdown = analyze_log(_loaded_system().log)
        assert breakdown.by_record_type["OperationRecord"]["count"] == 3
        assert "CheckpointRecord" in breakdown.by_record_type
        # flush_all logged flush/installation records too.
        bookkeeping = set(breakdown.by_record_type) - {"OperationRecord"}
        assert bookkeeping

    def test_op_kinds_split(self):
        breakdown = analyze_log(_loaded_system().log)
        assert breakdown.by_op_kind["physical"]["count"] == 1
        assert breakdown.by_op_kind["logical"]["count"] == 2
        # Only the physical write carries data values.
        assert breakdown.by_op_kind["physical"]["value_bytes"] == 1000
        assert breakdown.by_op_kind["logical"]["value_bytes"] == 0

    def test_totals_consistent(self):
        system = _loaded_system()
        breakdown = analyze_log(system.log)
        assert breakdown.total_bytes() == sum(
            record.record_size() for record in system.log.stable_records()
        )
        assert 0.0 <= breakdown.overhead_fraction() <= 1.0

    def test_render_readable(self):
        text = analyze_log(_loaded_system().log).render("composition")
        assert "composition" in text
        assert "OperationRecord" in text
        assert "op:logical" in text
