"""Tests for the RecoverableSystem facade (repro.kernel.system)."""

import pytest

from repro import (
    GeneralizedRedoTest,
    Operation,
    OpKind,
    RecoverableSystem,
    SystemConfig,
    VsiRedoTest,
    verify_recovered,
)
from tests.conftest import logical, physical


class TestLifecycle:
    def test_execute_and_read(self, system):
        system.execute(physical("x", b"v"))
        assert system.read("x") == b"v"
        assert len(system.history) == 1

    def test_crash_blocks_access(self, system):
        system.execute(physical("x", b"v"))
        system.crash()
        with pytest.raises(RuntimeError, match="crashed"):
            system.read("x")
        with pytest.raises(RuntimeError, match="crashed"):
            system.execute(physical("y", b"w"))
        system.recover()
        system.execute(physical("y", b"w"))  # works again

    def test_peek_works_while_crashed(self, system):
        system.execute(physical("x", b"v"))
        system.flush_all()
        system.crash()
        assert system.peek("x") == b"v"


class TestDurability:
    def test_unforced_operations_are_lost(self, system):
        system.execute(physical("x", b"v"))
        lost = system.crash()
        assert len(lost) == 1
        system.recover()
        assert len(system.history) == 0
        assert system.read("x") is None

    def test_forced_operations_survive(self, system):
        op = physical("x", b"v")
        system.execute(op)
        system.log.force()
        lost = system.crash()
        assert lost == []
        system.recover()
        assert system.read("x") == b"v"
        assert list(system.history) == [op]

    def test_flushed_operations_survive_without_force(self, system):
        # flush_all itself forces the needed log prefix (WAL).
        system.execute(physical("x", b"v"))
        system.flush_all()
        system.crash()
        system.recover()
        assert system.read("x") == b"v"


class TestRecoveryCycles:
    def test_work_continues_across_recoveries(self, system):
        system.execute(physical("x", b"1"))
        system.log.force()
        system.crash()
        system.recover()
        system.execute(logical("cp", "copy", {"x"}, {"y"}, ("x", "y")))
        system.flush_all()
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.read("y") == b"1"

    def test_truncated_history_still_verifies(self, system):
        system.execute(physical("x", b"1"))
        system.flush_all()
        system.checkpoint(truncate=True)
        system.execute(logical("cp", "copy", {"x"}, {"y"}, ("x", "y")))
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.read("y") == b"1"

    def test_last_report_retained(self, system):
        system.execute(physical("x", b"v"))
        system.log.force()
        system.crash()
        report = system.recover()
        assert system.last_report is report
        assert report.ops_redone == 1


class TestConfigs:
    def test_redo_test_configurable(self):
        system = RecoverableSystem(SystemConfig(redo_test=VsiRedoTest()))
        system.execute(physical("x", b"v"))
        system.flush_all()
        system.crash()
        report = system.recover()
        assert report.ops_skipped_installed == 1

    def test_default_is_generalized(self):
        system = RecoverableSystem()
        assert isinstance(system.config.redo_test, GeneralizedRedoTest)


class TestVerifier:
    def test_detects_corruption(self, system):
        system.execute(physical("x", b"good"))
        system.flush_all()
        system.crash()
        system.recover()
        # Corrupt the stable store behind the system's back.
        system.store.write("x", b"evil", 999)
        system.cache.evict("x")
        from repro import VerificationError

        with pytest.raises(VerificationError, match="disagrees"):
            verify_recovered(system)

    def test_deleted_objects_verified_absent(self, system):
        from repro.core.operation import delete_object

        system.execute(physical("x", b"v"))
        system.execute(delete_object("x"))
        system.flush_all()
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_all_cache_configs_roundtrip(self, any_cache_system):
        system = any_cache_system
        system.execute(physical("x", b"hello"))
        system.execute(logical("cp", "copy", {"x"}, {"y"}, ("x", "y")))
        system.execute(physical("x", b"world"))
        system.flush_all()
        system.crash()
        system.recover()
        verify_recovered(system)
        assert system.read("y") == b"hello"
        assert system.read("x") == b"world"
