"""Tests for the recoverable B-tree (repro.domains.btree)."""

import random

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import RecoverableBTree, SplitLoggingMode
from repro.domains.btree import lower_half, separator_key, upper_half


class TestPageHelpers:
    def test_leaf_split_halves(self):
        page = ("leaf", (1, 2, 3, 4), (b"a", b"b", b"c", b"d"))
        assert upper_half(page) == ("leaf", (3, 4), (b"c", b"d"))
        assert lower_half(page) == ("leaf", (1, 2), (b"a", b"b"))
        assert separator_key(page) == 3

    def test_internal_split_promotes_separator(self):
        page = ("internal", (10, 20, 30), ("p0", "p1", "p2", "p3"))
        assert separator_key(page) == 20
        assert upper_half(page) == ("internal", (30,), ("p2", "p3"))
        assert lower_half(page) == ("internal", (10,), ("p0", "p1"))


class TestBasicOperations:
    def test_empty_tree(self):
        tree = RecoverableBTree(RecoverableSystem())
        assert tree.lookup(1) is None
        assert tree.items() == []
        assert tree.check_structure() == 0

    def test_insert_and_lookup(self):
        tree = RecoverableBTree(RecoverableSystem())
        tree.insert(5, b"five")
        tree.insert(3, b"three")
        assert tree.lookup(5) == b"five"
        assert tree.lookup(4) is None

    def test_update_replaces(self):
        tree = RecoverableBTree(RecoverableSystem())
        tree.insert(1, b"old")
        tree.insert(1, b"new")
        assert tree.lookup(1) == b"new"
        assert tree.check_structure() == 1

    def test_items_sorted(self):
        tree = RecoverableBTree(RecoverableSystem())
        for key in (5, 1, 3, 2, 4):
            tree.insert(key, str(key).encode())
        assert [k for k, _v in tree.items()] == [1, 2, 3, 4, 5]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="at least 3"):
            RecoverableBTree(RecoverableSystem(), capacity=2)


class TestSplits:
    @pytest.mark.parametrize("mode", list(SplitLoggingMode))
    def test_many_inserts_keep_structure(self, mode):
        tree = RecoverableBTree(
            RecoverableSystem(), capacity=4, mode=mode
        )
        rng = random.Random(7)
        keys = list(range(120))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, f"v{key}".encode())
        assert tree.check_structure() == 120
        for key in (0, 60, 119):
            assert tree.lookup(key) == f"v{key}".encode()

    def test_sequential_inserts(self):
        tree = RecoverableBTree(RecoverableSystem(), capacity=4)
        for key in range(60):
            tree.insert(key, b"v")
        assert tree.check_structure() == 60

    def test_reverse_inserts(self):
        tree = RecoverableBTree(RecoverableSystem(), capacity=4)
        for key in reversed(range(60)):
            tree.insert(key, b"v")
        assert tree.check_structure() == 60

    def test_logical_split_logs_fewer_value_bytes(self):
        results = {}
        for mode in SplitLoggingMode:
            system = RecoverableSystem()
            tree = RecoverableBTree(system, capacity=8, mode=mode)
            for key in range(200):
                tree.insert(key, b"v" * 64)
            results[mode] = system.stats.log_value_bytes
        assert (
            results[SplitLoggingMode.LOGICAL]
            < results[SplitLoggingMode.PHYSIOLOGICAL]
        )


class TestRecovery:
    @pytest.mark.parametrize("mode", list(SplitLoggingMode))
    def test_crash_recover(self, mode):
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=4, mode=mode)
        rng = random.Random(13)
        keys = list(range(80))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, f"v{key}".encode())
        system.log.force()
        for _ in range(6):
            system.purge()
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = RecoverableBTree(system, capacity=4, mode=mode)
        assert recovered.check_structure() == 80
        for key in keys[:10]:
            assert recovered.lookup(key) == f"v{key}".encode()

    def test_attach_rederives_allocator(self):
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=4)
        for key in range(40):
            tree.insert(key, b"v")
        pages_before = tree._next_page
        system.log.force()
        system.crash()
        system.recover()
        recovered = RecoverableBTree(system, capacity=4)
        assert recovered._next_page == pages_before
        # New inserts must not clobber existing pages.
        for key in range(40, 80):
            recovered.insert(key, b"w")
        assert recovered.check_structure() == 80

    def test_crash_between_split_ops(self):
        """Crash with only a prefix of a split's three operations on
        the stable log: the durable prefix must still recover to a
        consistent (pre- or mid-split-by-prefix) state."""
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=4)
        for key in range(4):
            tree.insert(key, b"v")
        system.log.force()  # tree full, durable
        tree.insert(4, b"v")  # triggers root split + insert
        # Lose the split: nothing after the pre-split force survives.
        system.crash()
        system.recover()
        verify_recovered(system)
        recovered = RecoverableBTree(system, capacity=4)
        assert recovered.check_structure() == 4
