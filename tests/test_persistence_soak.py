"""Multi-session soak over a persistent database directory: random
workloads, random durability actions, abandon-without-cleanup, reopen —
ten times over, with value checks against a cumulative durable oracle."""

import random

from repro.core.oracle import Oracle
from repro.core.operation import TOMBSTONE
from repro.domains.kvstore import register_kv_functions
from repro.persist import PersistentSystem
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)

DOMAINS = [register_workload_functions, register_kv_functions]


def test_ten_sessions_with_abandonment(tmp_path):
    dbdir = str(tmp_path / "db")
    rng = random.Random(99)
    durable_ops = []

    for session in range(10):
        system = PersistentSystem.open(dbdir, domains=DOMAINS)

        # The reopened state must match the durable oracle so far.
        oracle = Oracle(system.registry)
        expected = oracle.replay(durable_ops)
        for obj, value in expected.items():
            actual = system.peek(obj)
            if value is TOMBSTONE:
                assert actual is None
            else:
                assert actual == value, (
                    f"session {session}: {obj} diverged"
                )

        # New work with random durability actions; track exactly the
        # prefix that becomes durable.
        workload = LogicalWorkload(
            LogicalWorkloadConfig(
                objects=5, operations=12, object_size=32, p_delete=0.1
            ),
            seed=1000 + session,
        )
        executed = []
        for op in workload.operations():
            system.execute(op)
            executed.append(op)
            roll = rng.random()
            if roll < 0.3:
                system.log.force()
            if roll < 0.2:
                system.purge()
            if rng.random() < 0.1:
                system.checkpoint(truncate=rng.random() < 0.5)
        durable_ops.extend(
            op for op in executed if system.log.is_stable(op.lsi)
        )
        # Abandon without cleanup: the volatile tail dies here.
        del system
