"""Tests for event tracing (repro.analysis.trace) and its cache-manager
integration."""

from repro import RecoverableSystem, verify_recovered
from repro.analysis import Tracer
from tests.conftest import logical, physical


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit("a", x=1)
        tracer.emit("b", y=2)
        tracer.emit("a", x=3)
        assert tracer.kinds() == ["a", "b", "a"]
        assert [e.get("x") for e in tracer.of_kind("a")] == [1, 3]
        assert tracer.counts() == {"a": 2, "b": 1}
        assert len(tracer) == 3

    def test_capacity_bound(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.emit("e", n=index)
        assert [e.get("n") for e in tracer] == [3, 4]

    def test_capacity_enforced_by_deque(self):
        # The bound is structural (deque maxlen), not a slice in emit():
        # overflowing by one drops exactly the oldest event.
        from collections import deque

        tracer = Tracer(capacity=3)
        assert isinstance(tracer.events, deque)
        assert tracer.events.maxlen == 3
        for index in range(4):
            tracer.emit("e", n=index)
        assert len(tracer) == 3
        assert [e.get("n") for e in tracer] == [1, 2, 3]

    def test_clear(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.clear()
        assert len(tracer) == 0

    def test_repr_readable(self):
        tracer = Tracer()
        tracer.emit("install", vars=("x",))
        assert "install" in repr(tracer.events[0])


class TestIntegration:
    def test_execute_and_install_events(self, system):
        tracer = system.attach_tracer()
        system.execute(physical("x", b"v"))
        system.flush_all()
        kinds = tracer.kinds()
        assert "execute" in kinds
        assert "install" in kinds
        install = tracer.of_kind("install")[0]
        assert install.get("vars") == ("x",)

    def test_identity_write_events(self, system):
        tracer = system.attach_tracer()
        system.registry.register(
            "pairT", lambda reads: {"a": b"1", "b": b"2"}
        )
        from repro import Operation, OpKind

        system.execute(
            Operation(
                "pairT", OpKind.LOGICAL, reads=set(), writes={"a", "b"},
                fn="pairT",
            )
        )
        system.flush_all()
        assert tracer.counts().get("identity-write", 0) >= 1

    def test_tracer_survives_crash_recover(self, system):
        tracer = system.attach_tracer()
        system.execute(physical("x", b"v"))
        system.log.force()
        system.crash()
        system.recover()
        system.flush_all()
        verify_recovered(system)
        assert "install" in tracer.kinds()

    def test_notx_install_traced(self, system):
        tracer = system.attach_tracer()
        system.execute(physical("x", b"old"))
        system.execute(physical("x", b"new"))
        system.purge()
        installs = tracer.of_kind("install")
        assert installs[0].get("notx") == ("x",)
        assert installs[0].get("vars") == ()

    def test_checkpoint_and_evict_traced(self, system):
        tracer = system.attach_tracer()
        system.execute(physical("x", b"v"))
        system.flush_all()
        system.checkpoint()
        system.cache.evict("x")
        assert "checkpoint" in tracer.kinds()
        assert "evict" in tracer.kinds()
