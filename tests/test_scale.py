"""Scale smoke tests: a few thousand operations through the full stack.

These keep the suite honest about algorithmic behaviour (the
incremental rW maintenance, writer-index discharge, analysis scans) —
a quadratic regression shows up here as a timeout long before users
see it.
"""

import random

import pytest

from repro import RecoverableSystem, SystemConfig, verify_recovered
from repro.domains import IndexedKVStore, KVPageStore, RecoverableBTree
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)


class TestScale:
    def test_five_thousand_physiological_ops(self):
        system = RecoverableSystem()
        store = KVPageStore(system, pages=32)
        rng = random.Random(1)
        for index in range(5000):
            store.put(rng.randrange(500), index)
            if index % 200 == 199:
                system.flush_all()
                system.checkpoint(truncate=True)
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_two_thousand_logical_ops_with_purges(self):
        system = RecoverableSystem()
        register_workload_functions(system.registry)
        rng = random.Random(2)
        workload = LogicalWorkload(
            LogicalWorkloadConfig(
                objects=24, operations=2000, object_size=64, p_delete=0.05
            ),
            seed=2,
        )
        for index, op in enumerate(workload.operations()):
            system.execute(op)
            if rng.random() < 0.2:
                system.purge()
            if index % 250 == 249:
                system.log.force()
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_btree_thousand_keys_mixed(self):
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=16)
        rng = random.Random(3)
        alive = set()
        for _round in range(2000):
            key = rng.randrange(1000)
            if key in alive and rng.random() < 0.4:
                tree.delete(key)
                alive.discard(key)
            else:
                tree.insert(key, key)
                alive.add(key)
        assert tree.check_structure() == len(alive)
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_indexed_store_thousand_updates(self):
        system = RecoverableSystem()
        store = IndexedKVStore(system, base_pages=16, index_pages=16)
        rng = random.Random(4)
        for index in range(1000):
            store.put(f"k{rng.randrange(100)}", f"v{rng.randrange(20)}")
            if index % 100 == 99:
                system.flush_all()
        store.check_index_consistency()
        system.checkpoint(truncate=True)
        system.crash()
        report = system.recover()
        verify_recovered(system)
        IndexedKVStore(
            system, base_pages=16, index_pages=16
        ).check_index_consistency()
