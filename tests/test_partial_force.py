"""Crash-during-force semantics: a crash can leave any *prefix* of the
volatile buffer stable (the log device writes in order), never a gap.

``force_through`` is exactly that prefix force, so these tests drive
workloads with arbitrary partial forces and verify recovery — covering
the torn-log-tail behaviour a real WAL gets from record checksums.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import RecoverableSystem, verify_recovered
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from tests.conftest import examples, physical


class TestPrefixSemantics:
    def test_partial_force_keeps_prefix_only(self):
        system = RecoverableSystem()
        ops = [physical(f"o{i}", bytes([i])) for i in range(5)]
        for op in ops:
            system.execute(op)
        system.log.force_through(ops[2].lsi)
        system.crash()
        system.recover()
        verify_recovered(system)
        for index in range(3):
            assert system.read(f"o{index}") == bytes([index])
        for index in range(3, 5):
            assert system.read(f"o{index}") is None

    def test_stable_log_lsis_are_gapless_prefix(self):
        system = RecoverableSystem()
        for index in range(6):
            system.execute(physical(f"o{index}", b"v"))
            if index % 2 == 0:
                system.log.force_through(index + 1)
        lsis = [record.lsi for record in system.log.stable_records()]
        assert lsis == sorted(lsis)
        assert lsis == list(range(lsis[0], lsis[-1] + 1))


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    cut_ratio=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=examples(40), deadline=None)
def test_crash_during_force_recovers(seed, cut_ratio):
    """Model a crash mid-force: an arbitrary prefix of the buffered
    records reached the stable log before the lights went out."""
    rng = random.Random(seed)
    system = RecoverableSystem()
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(objects=4, operations=25, object_size=32),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.2:
            system.purge()
    buffered = system.log.buffered_lsis()
    if buffered:
        cut_index = int(cut_ratio * (len(buffered) - 1))
        system.log.force_through(buffered[cut_index])
    system.crash()
    system.recover()
    verify_recovered(system)
