"""Unit tests for the refined write graph rW (Figure 6), including the
paper's worked examples (Figure 5, Figure 7, the Section 4 cycle)."""

from repro.core.history import History
from repro.core.operation import Operation, OpKind, identity_write
from repro.core.refined_write_graph import RefinedWriteGraph


def _op(name, reads, writes):
    op = Operation(
        name, OpKind.LOGICAL, reads=set(reads), writes=set(writes), fn="f"
    )
    return op


def _feed(*ops):
    """Build an rW by feeding ops in conflict order with lSIs assigned."""
    graph = RefinedWriteGraph()
    history = History()
    for index, op in enumerate(ops):
        history.append(op)
        op.lsi = index + 1
        graph.add_operation(op)
    return graph


class TestBasicShapes:
    def test_single_op_single_node(self):
        a = _op("a", [], ["x"])
        graph = _feed(a)
        assert len(graph) == 1
        assert graph.node_of(a).vars == {"x"}

    def test_physiological_chain_merges(self):
        # X <- f(X) twice: exposed writes merge into one node.
        a = _op("a", ["x"], ["x"])
        b = _op("b", ["x"], ["x"])
        graph = _feed(a, b)
        assert len(graph) == 1
        node = graph.nodes[0]
        assert node.ops == {a, b}
        assert node.vars == {"x"}
        assert node.notx == set()

    def test_disjoint_physiological_no_edges(self):
        # The degenerate case: singleton nodes, no flush constraints.
        graph = _feed(_op("a", ["x"], ["x"]), _op("b", ["y"], ["y"]))
        assert len(graph) == 2
        assert len(graph.minimal_nodes()) == 2


class TestBlindWritesUnexpose:
    def test_blind_write_removes_from_vars(self):
        """The core refinement: a later blind write moves an object from
        an earlier node's vars into its Notx."""
        a = _op("a", [], ["x"])
        blind = _op("blind", [], ["x"])
        graph = _feed(a, blind)
        node_a = graph.node_of(a)
        node_b = graph.node_of(blind)
        assert node_a is not node_b
        assert node_a.vars == set()
        assert node_a.notx == {"x"}
        assert node_b.vars == {"x"}
        # Write-write edge: a's node installs before blind's node.
        assert graph.successors(node_a) == {node_b}

    def test_vars_holder_unique(self):
        a = _op("a", [], ["x"])
        b = _op("b", [], ["x"])
        c = _op("c", [], ["x"])
        graph = _feed(a, b, c)
        holders = [n for n in graph.nodes if "x" in n.vars]
        assert len(holders) == 1
        assert holders[0] is graph.node_of(c)


class TestFigure5:
    """Figure 5: A writes X and Y atomically; B (reads Y, writes X
    blindly w.r.t. X) lets Y be flushed alone."""

    def test_refinement(self):
        a = _op("A", ["X", "Y"], ["X", "Y"])
        b = _op("B", ["Y"], ["X"])
        graph = _feed(a, b)
        node_a = graph.node_of(a)
        node_b = graph.node_of(b)
        # Initially {X, Y} were one flush set; after B, X is unexposed
        # in A's node and can be skipped when flushing.
        assert node_a.vars == {"Y"}
        assert node_a.notx == {"X"}
        assert node_b.vars == {"X"}
        # Flush order: A's node (Y alone) before B's node (X).
        assert graph.minimal_nodes() == [node_a]
        assert graph.successors(node_a) == {node_b}


class TestFigure7:
    """Figure 7: one operation writes both X and Y; B reads X; C blind-
    writes X.  rW keeps Y alone in A's flush set; W would atomically
    flush {X, Y}."""

    def test_rw_shape(self):
        a = _op("A", [], ["X", "Y"])
        b = _op("B", ["X"], ["Z"])
        c = _op("C", [], ["X"])
        graph = _feed(a, b, c)
        node_a = graph.node_of(a)
        node_b = graph.node_of(b)
        node_c = graph.node_of(c)
        assert node_a.vars == {"Y"}
        assert node_a.notx == {"X"}
        assert node_c.vars == {"X"}
        # Inverse write-read edge: B read Lastw(A, X), so B's node must
        # install before A's node (X's unflushed value must not be
        # needed once A is installed).
        assert node_a in graph.successors(node_b)
        # And A's node before C's (write-write).
        assert node_c in graph.successors(node_a)

    def test_install_order_via_minimal_nodes(self):
        a = _op("A", [], ["X", "Y"])
        b = _op("B", ["X"], ["Z"])
        c = _op("C", [], ["X"])
        graph = _feed(a, b, c)
        order = []
        while graph.nodes:
            node = graph.minimal_nodes()[0]
            order.append(sorted(op.name for op in node.ops))
            graph.remove_node(node)
        assert order == [["B"], ["A"], ["C"]]


class TestSection4Cycle:
    """(a) Y=f(X,Y); (b) X=g(Y); (c) Y=h(Y) — a cycle forms and is
    collapsed into one node with a multi-object flush set."""

    def test_cycle_collapse(self):
        a = _op("a", ["X", "Y"], ["Y"])
        b = _op("b", ["Y"], ["X"])
        c = _op("c", ["Y"], ["Y"])
        graph = _feed(a, b, c)
        assert graph.cycle_collapses == 1
        assert len(graph) == 1
        node = graph.nodes[0]
        assert node.ops == {a, b, c}
        assert node.vars == {"X", "Y"}
        assert graph.is_acyclic()


class TestIdentityWrites:
    def test_identity_write_peels_object(self):
        """Feeding W_IP(X) through addop_rW removes X from the big
        node's vars — Section 4's flush-set dissolution."""
        a = _op("a", ["X", "Y"], ["Y"])
        b = _op("b", ["Y"], ["X"])
        c = _op("c", ["Y"], ["Y"])
        graph = _feed(a, b, c)
        big = graph.nodes[0]
        wip = identity_write("X", b"value")
        wip.lsi = 10
        graph.add_operation(wip)
        node_w = graph.node_of(wip)
        assert node_w is not big
        assert big.vars == {"Y"}
        assert big.notx == {"X"}
        assert node_w.vars == {"X"}
        assert node_w in graph.successors(big)
        # The big node can now be installed by flushing Y alone.
        assert graph.minimal_nodes() == [big]


class TestRemoveNode:
    def test_remove_requires_minimal(self):
        a = _op("a", ["X", "Y"], ["Y"])
        b = _op("b", ["Y"], ["X"])
        graph = _feed(a, b)
        node_b = graph.node_of(b)
        try:
            graph.remove_node(node_b)
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_remove_returns_vars_and_notx(self):
        a = _op("a", [], ["x"])
        blind = _op("blind", [], ["x"])
        graph = _feed(a, blind)
        node_a = graph.node_of(a)
        flushed, unexposed = graph.remove_node(node_a)
        assert flushed == set()
        assert unexposed == {"x"}
        assert len(graph) == 1

    def test_uninstalled_operations(self):
        a = _op("a", [], ["x"])
        b = _op("b", [], ["y"])
        graph = _feed(a, b)
        assert graph.uninstalled_operations() == {a, b}

    def test_flush_set_sizes(self):
        a = _op("a", [], ["x", "y"])
        graph = _feed(a)
        assert graph.flush_set_sizes() == [2]


class TestReadWriteEdges:
    def test_reader_before_later_writer(self):
        reader = _op("reader", ["x"], ["y"])
        writer = _op("writer", ["z"], ["x"])
        graph = _feed(_op("init", [], ["x", "z"]), reader, writer)
        node_r = graph.node_of(reader)
        node_w = graph.node_of(writer)
        assert node_w in graph.successors(node_r)
