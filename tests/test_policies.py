"""Tests for cache policies (repro.cache.policies) and their
integration: capacity eviction and identity-write victim selection."""

import pytest

from repro import (
    CacheConfig,
    Operation,
    OpKind,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.cache.policies import (
    FIFOEviction,
    LRUEviction,
    PeelFirstSorted,
    PeelHottest,
)
from repro.workloads import register_workload_functions
from tests.conftest import physical


class TestLRUEviction:
    def test_orders_by_recency(self):
        policy = LRUEviction()
        for obj in ("a", "b", "c"):
            policy.touch(obj)
        policy.touch("a")  # a is now hottest
        assert policy.victims(["a", "b", "c"]) == ["b", "c", "a"]

    def test_forget(self):
        policy = LRUEviction()
        policy.touch("a")
        policy.forget("a")
        assert policy.last_access("a") == 0

    def test_untouched_objects_coldest(self):
        policy = LRUEviction()
        policy.touch("a")
        assert policy.victims(["ghost", "a"]) == ["ghost", "a"]


class TestFIFOEviction:
    def test_ignores_reaccess(self):
        policy = FIFOEviction()
        for obj in ("a", "b", "c"):
            policy.touch(obj)
        policy.touch("a")  # re-access must not rejuvenate
        assert policy.victims(["a", "b", "c"]) == ["a", "b", "c"]


class TestVictimPolicies:
    def test_sorted_peels_lexicographic(self):
        assert PeelFirstSorted().peel({"zz", "aa"}) == "aa"

    def test_hottest_peels_most_recent(self):
        heat = LRUEviction()
        heat.touch("cold")
        heat.touch("hot")
        assert PeelHottest().peel({"cold", "hot"}, heat) == "hot"

    def test_hottest_without_heat_falls_back(self):
        assert PeelHottest().peel({"b", "a"}) == "a"


class TestCapacityEnforcement:
    def test_cache_stays_within_capacity(self):
        config = SystemConfig(cache=CacheConfig(capacity=6))
        system = RecoverableSystem(config)
        for index in range(30):
            system.execute(physical(f"o{index}", b"v" * 32))
        assert len(system.cache) <= 6

    def test_installs_when_everything_dirty(self):
        # Capacity 3, four dirty objects: enforcement must purge to
        # create clean entries before evicting.
        config = SystemConfig(cache=CacheConfig(capacity=3))
        system = RecoverableSystem(config)
        for index in range(8):
            system.execute(physical(f"o{index}", b"v"))
        assert len(system.cache) <= 3
        assert system.stats.flushes > 0

    def test_evicted_objects_read_through(self):
        config = SystemConfig(cache=CacheConfig(capacity=4))
        system = RecoverableSystem(config)
        for index in range(10):
            system.execute(physical(f"o{index}", bytes([index])))
        for index in range(10):
            assert system.read(f"o{index}") == bytes([index])

    def test_capacity_system_recovers(self):
        config = SystemConfig(cache=CacheConfig(capacity=4))
        system = RecoverableSystem(config)
        register_workload_functions(system.registry)
        from repro.workloads import LogicalWorkload, LogicalWorkloadConfig

        workload = LogicalWorkload(
            LogicalWorkloadConfig(objects=8, operations=40, object_size=32),
            seed=2,
        )
        for op in workload.operations():
            system.execute(op)
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_lru_evicts_coldest(self):
        config = SystemConfig(
            cache=CacheConfig(capacity=3, eviction=LRUEviction())
        )
        system = RecoverableSystem(config)
        for obj in ("a", "b", "c"):
            system.execute(physical(obj, b"v"))
        system.flush_all()
        system.read("a")  # heat a; b is now coldest
        system.execute(physical("d", b"v"))  # forces one eviction
        assert len(system.cache) <= 3
        assert system.cache.entry("a") is not None
        assert system.cache.entry("b") is None


class TestHotVictimIntegration:
    def _pair_system(self, victim_policy):
        system = RecoverableSystem(
            SystemConfig(cache=CacheConfig(victim_policy=victim_policy))
        )
        system.registry.register(
            "pair2", lambda reads: {"hot": b"H", "cold": b"C"}
        )
        return system

    def test_hottest_policy_flushes_cold_object(self):
        system = self._pair_system(PeelHottest())
        system.execute(
            Operation(
                "pair2", OpKind.LOGICAL, reads=set(),
                writes={"hot", "cold"}, fn="pair2",
            )
        )
        system.read("hot")  # make it hot
        system.purge()
        # The hot object was peeled (identity write, stays dirty in
        # cache); the cold one was flushed.
        assert system.store.contains("cold")
        assert not system.store.contains("hot")
        # Recoverability unaffected.
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_sorted_policy_deterministic(self):
        system = self._pair_system(PeelFirstSorted())
        system.execute(
            Operation(
                "pair2", OpKind.LOGICAL, reads=set(),
                writes={"hot", "cold"}, fn="pair2",
            )
        )
        system.purge()
        # 'cold' sorts first, so it is peeled; 'hot' is flushed.
        assert system.store.contains("hot")
        assert not system.store.contains("cold")
