"""Unit tests for the function registry (repro.core.functions)."""

import pytest

from repro.common.errors import UnknownFunctionError
from repro.core.functions import FunctionRegistry, default_registry


class TestRegistry:
    def test_register_and_resolve(self):
        registry = FunctionRegistry()
        fn = lambda reads: {"x": 1}  # noqa: E731
        registry.register("f", fn)
        assert registry.resolve("f") is fn
        assert registry.registered("f")

    def test_unknown_function_raises(self):
        registry = FunctionRegistry()
        with pytest.raises(UnknownFunctionError, match="unregistered"):
            registry.resolve("ghost")

    def test_double_registration_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", lambda reads: {})
        with pytest.raises(ValueError, match="already registered"):
            registry.register("f", lambda reads: {})

    def test_replace_allowed_when_explicit(self):
        registry = FunctionRegistry()
        registry.register("f", lambda reads: {"x": 1})
        new = lambda reads: {"x": 2}  # noqa: E731
        registry.register("f", new, replace=True)
        assert registry.resolve("f") is new

    def test_child_is_independent(self):
        parent = FunctionRegistry()
        parent.register("f", lambda reads: {})
        child = parent.child()
        child.register("g", lambda reads: {})
        assert child.registered("f")
        assert not parent.registered("g")


class TestDefaultTransforms:
    def test_copy(self):
        registry = default_registry()
        fn = registry.resolve("copy")
        assert fn({"a": b"data"}, "a", "b") == {"b": b"data"}

    def test_sorted_copy_bytes(self):
        registry = default_registry()
        fn = registry.resolve("sorted_copy")
        assert fn({"a": b"cba"}, "a", "b") == {"b": b"abc"}

    def test_sorted_copy_sequence(self):
        registry = default_registry()
        fn = registry.resolve("sorted_copy")
        assert fn({"a": (3, 1, 2)}, "a", "b") == {"b": (1, 2, 3)}

    def test_concat_bytes(self):
        registry = default_registry()
        fn = registry.resolve("concat")
        got = fn({"a": b"xy", "b": b"z"}, "out", "a", "b")
        assert got == {"out": b"xyz"}

    def test_concat_tuples(self):
        registry = default_registry()
        fn = registry.resolve("concat")
        got = fn({"a": (1,), "b": (2, 3)}, "out", "a", "b")
        assert got == {"out": (1, 2, 3)}

    def test_determinism(self):
        registry = default_registry()
        fn = registry.resolve("sorted_copy")
        first = fn({"a": b"hello world"}, "a", "b")
        second = fn({"a": b"hello world"}, "a", "b")
        assert first == second
