"""E10 — hot-path throughput: indexed addop_rW and the group-commit WAL.

The perf companion to E4's structural story.  E4 showed *what* rW
buys (small flush sets); E10 measures *how fast* the bookkeeping runs
now that the engine is indexed:

* **graph maintenance** — ops/sec and p50/p99 per-op latency of
  ``RefinedWriteGraph.add_operation`` at 1k/5k/20k operations across
  the E4 workload mixes, against the scan-everything
  ``ReferenceWriteGraph`` (the pre-optimization implementation, kept
  verbatim in ``repro.core._reference``);
* **near-linear scaling** — the time ratio between the largest and
  smallest sizes must stay well below the quadratic baseline's;
* **W-mode lane** — the live ``IncrementalWriteGraph`` engine against
  the per-install ``BatchWriteGraph`` rebuild the cache manager used to
  perform in W mode, under an identical drain-to-bound install policy;
  plus a full W-mode kernel run asserting the engine performs **zero**
  full graph rebuilds across the whole stream;
* **end-to-end kernel runs** — ``RecoverableSystem.execute`` with
  purge pressure, the full WAL + cache + graph path;
* **group commit** — log forces with the knob off vs on over the E8a
  heavy-logical workload, both settings verified to recover.

Results are appended to ``BENCH_e10.json`` at the repo root so future
PRs can track the trajectory (CI diffs the ``ops_per_sec`` lanes, see
``benchmarks/diff_trajectory.py``).  ``E10_MAX_OPS`` caps the largest
size (CI smoke runs with ``E10_MAX_OPS=1000``); the sizes and the
reference measurements scale down with it, so every assertion still
runs.  The quadratic reference is never *run* above ``SPEEDUP_SIZE``:
larger sizes get entries extrapolated from a fitted power law, marked
``"extrapolated": true`` and excluded from differential checks and CI
lane diffs.
"""

from __future__ import annotations

import json
import math
import os
import random
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro import (
    CacheConfig,
    GraphMode,
    MultiObjectStrategy,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.analysis import Table
from repro.core._reference import ReferenceWriteGraph
from repro.core.history import History
from repro.core.incremental_write_graph import IncrementalWriteGraph
from repro.core.installation_graph import InstallationGraph
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.core.write_graph import BatchWriteGraph
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from benchmarks.conftest import once

MIXES = [
    ("physiological-only", dict(w_physical=0.2, w_touch=0.8, w_combine=0.0, w_derive=0.0)),
    ("25% logical", dict(w_physical=0.2, w_touch=0.55, w_combine=0.15, w_derive=0.1)),
    ("50% logical", dict(w_physical=0.15, w_touch=0.35, w_combine=0.3, w_derive=0.2)),
    ("75% logical", dict(w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3)),
]
HEAVY = "75% logical"

MAX_OPS = int(os.environ.get("E10_MAX_OPS", "20000"))
#: Small/medium/large — 1k/5k/20k by default, scaled down under a cap.
SIZES = sorted({max(50, MAX_OPS // 20), max(100, MAX_OPS // 4), MAX_OPS})
#: The reference graph is quadratic; it is only run at the two smaller
#: sizes (and the speedup is asserted at the middle one).
REF_SIZES = SIZES[:2]
SPEEDUP_SIZE = REF_SIZES[-1]
#: >= 10x is the acceptance bar at the real 5k size; the scaled-down
#: smoke sizes leave less quadratic work to win back.
SPEEDUP_FLOOR = 10.0 if SPEEDUP_SIZE >= 5000 else 3.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e10.json"


def _ops_for(mix: dict, size: int, seed: int = 7) -> List:
    config = LogicalWorkloadConfig(
        objects=max(64, size // 4), operations=size, object_size=32, **mix
    )
    workload = LogicalWorkload(config, seed=seed)
    history = History()
    ops = []
    for op in workload.operations():
        history.append(op)
        op.lsi = op.op_id + 1
        ops.append(op)
    return ops


def _drive(graph, ops) -> Dict[str, float]:
    """Feed ``ops`` one at a time, recording per-op latency."""
    latencies = []
    t_start = time.perf_counter()
    for op in ops:
        t0 = time.perf_counter()
        graph.add_operation(op)
        latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - t_start
    latencies.sort()
    n = len(latencies)
    return {
        "ops": n,
        "total_s": total,
        "ops_per_sec": n / total,
        "p50_us": latencies[n // 2] * 1e6,
        "p99_us": latencies[min(n - 1, int(0.99 * (n - 1)))] * 1e6,
        "nodes": len(graph),
        "collapses": graph.cycle_collapses,
    }


def _record(section: str, payload) -> None:
    """Merge one section into the BENCH_e10.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["max_ops"] = MAX_OPS
    data["sizes"] = SIZES
    data[section] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _maintenance_sweep() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {"indexed": {}, "reference": {}}
    # Warm-up: the first lanes measured otherwise pay interpreter and
    # allocator cold-start (up to ~30% on short runs), making recorded
    # throughput depend on sweep order.
    for engine_cls in (RefinedWriteGraph, ReferenceWriteGraph):
        _drive(engine_cls(), _ops_for(dict(MIXES[2][1]), 400, seed=3))
    for name, mix in MIXES:
        for size in SIZES:
            ops = _ops_for(mix, size)
            out["indexed"][f"{name}@{size}"] = _drive(RefinedWriteGraph(), ops)
    # The quadratic reference: smallest size for every mix (the
    # cross-mix table), plus the speedup size for the heavy mix only —
    # at 5k it already costs ~20s of wall clock.
    for name, mix in MIXES:
        ops = _ops_for(mix, SIZES[0])
        out["reference"][f"{name}@{SIZES[0]}"] = _drive(
            ReferenceWriteGraph(), ops
        )
    heavy_mix = dict(MIXES[3][1])
    ops = _ops_for(heavy_mix, SPEEDUP_SIZE)
    out["reference"][f"{HEAVY}@{SPEEDUP_SIZE}"] = _drive(
        ReferenceWriteGraph(), ops
    )
    # Above SPEEDUP_SIZE the reference is unaffordable (quadratic: the
    # 20k heavy run would take minutes).  Fit t = c * n^k to the two
    # measured heavy-mix sizes and extrapolate, labelling the entries
    # so differential checks and CI lane diffs skip them.
    t0 = out["reference"][f"{HEAVY}@{SIZES[0]}"]["total_s"]
    t1 = out["reference"][f"{HEAVY}@{SPEEDUP_SIZE}"]["total_s"]
    if SIZES[0] < SPEEDUP_SIZE and t0 > 0 and t1 > 0:
        exponent = math.log(t1 / t0) / math.log(SPEEDUP_SIZE / SIZES[0])
        scale = t1 / SPEEDUP_SIZE ** exponent
        for size in SIZES:
            if size <= SPEEDUP_SIZE:
                continue
            predicted = scale * size ** exponent
            out["reference"][f"{HEAVY}@{size}"] = {
                "ops": size,
                "total_s": predicted,
                "ops_per_sec": size / predicted,
                "extrapolated": True,
                "fit_exponent": exponent,
            }
    return out


@pytest.mark.benchmark(group="e10")
def test_e10_graph_maintenance_throughput(benchmark):
    results = once(benchmark, _maintenance_sweep)
    indexed, reference = results["indexed"], results["reference"]

    table = Table(
        f"E10: addop_rW throughput, sizes {SIZES}",
        ["mix @ ops", "idx ops/s", "idx p50us", "idx p99us",
         "ref ops/s", "speedup"],
    )
    for key, row in indexed.items():
        ref = reference.get(key)
        mark = "~" if ref and ref.get("extrapolated") else ""
        table.add_row(
            key,
            f"{row['ops_per_sec']:,.0f}",
            f"{row['p50_us']:.1f}",
            f"{row['p99_us']:.1f}",
            f"{mark}{ref['ops_per_sec']:,.0f}" if ref else "-",
            f"{mark}{row['ops_per_sec'] / ref['ops_per_sec']:.1f}x"
            if ref else "-",
        )
    table.print()

    # Differential sanity: same graphs out of both engines.
    # Extrapolated entries were never run, so they carry no graph shape.
    for key, ref in reference.items():
        if ref.get("extrapolated"):
            continue
        assert indexed[key]["nodes"] == ref["nodes"], key
        assert indexed[key]["collapses"] == ref["collapses"], key

    # Acceptance: >= 10x on the 5k-op 75%-logical maintenance workload.
    heavy_key = f"{HEAVY}@{SPEEDUP_SIZE}"
    speedup = (
        indexed[heavy_key]["ops_per_sec"]
        / reference[heavy_key]["ops_per_sec"]
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"indexed engine only {speedup:.1f}x faster at {heavy_key}"
    )

    # Near-linear scaling: growing the op count by R must grow the
    # total time far less than the quadratic baseline's R^2.
    small, large = SIZES[0], SIZES[-1]
    ops_ratio = large / small
    quadratic = ops_ratio * ops_ratio
    scaling = {}
    for name, _ in MIXES:
        t_small = indexed[f"{name}@{small}"]["total_s"]
        t_large = indexed[f"{name}@{large}"]["total_s"]
        ratio = t_large / t_small
        scaling[name] = ratio
        assert ratio < quadratic / 2, (
            f"{name}: {large}/{small} time ratio {ratio:.0f}x is not "
            f"meaningfully below the quadratic baseline ({quadratic:.0f}x)"
        )

    payload = {
        "indexed": indexed,
        "reference": reference,
        "speedup_at": heavy_key,
        "speedup": speedup,
        "scaling_time_ratio": scaling,
        "ops_ratio": ops_ratio,
    }
    top_key = f"{HEAVY}@{SIZES[-1]}"
    top_ref = reference.get(top_key)
    if top_ref is not None and top_ref.get("extrapolated"):
        payload["speedup_extrapolated_at"] = top_key
        payload["speedup_extrapolated"] = (
            indexed[top_key]["ops_per_sec"] / top_ref["ops_per_sec"]
        )
    _record("graph_maintenance", payload)


# ----------------------------------------------------------------------
# W-mode lane: live incremental engine vs per-install batch rebuild
# ----------------------------------------------------------------------
#
# Before the engine redesign, W mode rebuilt a batch write graph from
# every surviving operation *per installed node*.  Both drivers below
# apply the same drain-to-bound policy (purge pressure every
# W_DRAIN_EVERY ops once the live set exceeds W_DRAIN_TRIGGER, draining
# to W_DRAIN_TO) so the only difference measured is graph maintenance:
# incremental add + cheap removal versus rebuild-per-install.

W_DRAIN_EVERY = 25
W_DRAIN_TO = 100
W_DRAIN_TRIGGER = 200


def _drive_w_incremental(ops) -> Dict[str, float]:
    engine = IncrementalWriteGraph()
    live = 0
    installs = 0
    start = time.perf_counter()
    for count, op in enumerate(ops, start=1):
        engine.add_operation(op)
        live += 1
        if count % W_DRAIN_EVERY == 0 and live > W_DRAIN_TRIGGER:
            while live > W_DRAIN_TO:
                node = engine.minimal_nodes()[0]
                live -= len(node.ops)
                engine.remove_node(node)
                installs += 1
    total = time.perf_counter() - start
    stats = engine.stats()
    return {
        "ops": len(ops),
        "total_s": total,
        "ops_per_sec": len(ops) / total,
        "installs": installs,
        "full_rebuilds": stats["full_rebuilds"],
        "merges": stats["merges"],
    }


def _drive_w_batch_rebuild(ops) -> Dict[str, float]:
    live: List = []
    installs = 0
    rebuilds = 0
    start = time.perf_counter()
    for count, op in enumerate(ops, start=1):
        live.append(op)
        if count % W_DRAIN_EVERY == 0 and len(live) > W_DRAIN_TRIGGER:
            while len(live) > W_DRAIN_TO:
                graph = BatchWriteGraph(InstallationGraph(live))
                rebuilds += 1
                node = graph.minimal_nodes()[0]
                installed = set(node.ops)
                live = [o for o in live if o not in installed]
                installs += 1
    total = time.perf_counter() - start
    return {
        "ops": len(ops),
        "total_s": total,
        "ops_per_sec": len(ops) / total,
        "installs": installs,
        "full_rebuilds": rebuilds,
    }


def _w_kernel_run(size: int) -> Dict[str, float]:
    """Full W-mode system at ``size`` ops: the zero-rebuild acceptance
    run, with flush-set accretion sampled at every purge."""
    rng = random.Random(23)
    system = RecoverableSystem(SystemConfig(
        cache=CacheConfig(
            graph_mode=GraphMode.W,
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
        ),
    ))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=max(64, size // 4), operations=size, object_size=32,
            **dict(MIXES[3][1]),
        ),
        seed=23,
    )
    flush_set_peaks = []
    start = time.perf_counter()
    for count, op in enumerate(workload.operations(), start=1):
        system.execute(op)
        if count % W_DRAIN_EVERY == 0 and len(
            system.cache.uninstalled_operations()
        ) > W_DRAIN_TRIGGER:
            sizes = system.engine.flush_set_sizes()
            flush_set_peaks.append(max(sizes) if sizes else 0)
            while len(system.cache.uninstalled_operations()) > W_DRAIN_TO:
                if not system.purge():
                    break
    total = time.perf_counter() - start
    stats = system.engine.stats()
    system.flush_all()
    return {
        "ops": size,
        "total_s": total,
        "ops_per_sec": size / total,
        "full_rebuilds": stats["full_rebuilds"],
        "operations_added": stats["operations_added"],
        "max_flush_set": max(flush_set_peaks, default=0),
        "mean_flush_set_peak": (
            sum(flush_set_peaks) / len(flush_set_peaks)
            if flush_set_peaks else 0.0
        ),
    }


@pytest.mark.benchmark(group="e10")
def test_e10_w_mode_lane(benchmark):
    def sweep():
        heavy_mix = dict(MIXES[3][1])
        ops = _ops_for(heavy_mix, SPEEDUP_SIZE, seed=19)
        return {
            "incremental": _drive_w_incremental(ops),
            "batch_rebuild": _drive_w_batch_rebuild(list(ops)),
            "kernel": _w_kernel_run(MAX_OPS),
        }

    results = once(benchmark, sweep)
    incremental = results["incremental"]
    batch = results["batch_rebuild"]
    kernel = results["kernel"]

    table = Table(
        f"E10: W-mode maintenance at {SPEEDUP_SIZE} ops (75% logical)",
        ["driver", "ops/s", "installs", "rebuilds"],
    )
    table.add_row(
        "incremental", f"{incremental['ops_per_sec']:,.0f}",
        incremental["installs"], incremental["full_rebuilds"],
    )
    table.add_row(
        "batch-rebuild", f"{batch['ops_per_sec']:,.0f}",
        batch["installs"], batch["full_rebuilds"],
    )
    table.add_row(
        f"kernel@{MAX_OPS}", f"{kernel['ops_per_sec']:,.0f}",
        "-", kernel["full_rebuilds"],
    )
    table.print()

    # Acceptance: the live engine never rebuilds, and beats the old
    # rebuild-per-install W mode by >= 10x at the 5k heavy-mix size.
    assert incremental["full_rebuilds"] == 0
    assert kernel["full_rebuilds"] == 0, (
        f"W-mode kernel run performed {kernel['full_rebuilds']} rebuilds"
    )
    assert kernel["operations_added"] >= MAX_OPS
    speedup = incremental["ops_per_sec"] / batch["ops_per_sec"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental W engine only {speedup:.1f}x faster than the "
        f"per-install batch rebuild at {SPEEDUP_SIZE} ops"
    )

    _record("w_mode", {
        "incremental": incremental,
        "batch_rebuild": batch,
        "kernel": kernel,
        "speedup": speedup,
        "speedup_at": f"{HEAVY}@{SPEEDUP_SIZE}",
    })


def _kernel_run(size: int, metrics=None) -> Dict[str, float]:
    """End-to-end: execute + periodic purge through a full system.

    ``metrics`` attaches a registry so the same driver measures the
    instrumented path (the observability-overhead lane).
    """
    rng = random.Random(11)
    system = RecoverableSystem(SystemConfig(group_commit=True))
    if metrics is not None:
        system.attach_metrics(metrics)
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=max(64, size // 4), operations=size, object_size=64,
            **dict(MIXES[3][1]),
        ),
        seed=11,
    )
    latencies = []
    t_start = time.perf_counter()
    for op in workload.operations():
        t0 = time.perf_counter()
        system.execute(op)
        latencies.append(time.perf_counter() - t0)
        if rng.random() < 0.05:
            system.purge()
    total = time.perf_counter() - t_start
    system.flush_all()
    latencies.sort()
    n = len(latencies)
    return {
        "ops": n,
        "total_s": total,
        "ops_per_sec": n / total,
        "p50_us": latencies[n // 2] * 1e6,
        "p99_us": latencies[min(n - 1, int(0.99 * (n - 1)))] * 1e6,
    }


@pytest.mark.benchmark(group="e10")
def test_e10_end_to_end_kernel(benchmark):
    sizes = REF_SIZES  # the two smaller sizes bound the wall clock
    results = once(
        benchmark, lambda: {size: _kernel_run(size) for size in sizes}
    )

    table = Table(
        "E10: end-to-end kernel throughput (execute + purge, 75% logical)",
        ["ops", "ops/s", "p50us", "p99us"],
    )
    for size, row in results.items():
        table.add_row(
            size,
            f"{row['ops_per_sec']:,.0f}",
            f"{row['p50_us']:.1f}",
            f"{row['p99_us']:.1f}",
        )
    table.print()

    # The full path has linear per-op work (logging, cache, oracle), so
    # doubling and more the op count must not crater throughput.
    small, large = sizes[0], sizes[-1]
    ops_ratio = large / small
    time_ratio = results[large]["total_s"] / results[small]["total_s"]
    assert time_ratio < ops_ratio * ops_ratio / 2

    _record(
        "kernel_end_to_end",
        {str(size): row for size, row in results.items()},
    )


# ----------------------------------------------------------------------
# Observability overhead: the null-object default must cost ~nothing
# ----------------------------------------------------------------------
#
# The instrumented hot paths (WAL force, cache install/flush, engine
# addop) gate all real work behind ``if obs.enabled``; with no registry
# attached that is one attribute check per call.  This lane runs the
# end-to-end kernel driver both ways and records both throughputs —
# the *null* lane is what CI diffs against the committed baseline (the
# <5% acceptance bar runs at the driver level with the committed
# BENCH_e10.json), the attached/null ratio is the in-test sanity bar.

#: Write the attached run's registry here as a JSONL artifact
#: (CI smoke sets it; unset skips the dump).
METRICS_OUT = os.environ.get("E10_METRICS_OUT", "")


@pytest.mark.benchmark(group="e10")
def test_e10_observability_overhead(benchmark):
    from repro.obs import MetricsRegistry, dump_jsonl

    size = SIZES[1]

    def sweep():
        _kernel_run(max(100, size // 4))  # shared warm-up
        null_run = _kernel_run(size)
        registry = MetricsRegistry()
        attached_run = _kernel_run(size, metrics=registry)
        return null_run, attached_run, registry

    null_run, attached_run, registry = once(benchmark, sweep)

    ratio = attached_run["ops_per_sec"] / null_run["ops_per_sec"]
    table = Table(
        f"E10: observability overhead at {size} ops (75% logical)",
        ["registry", "ops/s", "p50us", "p99us"],
    )
    table.add_row(
        "none (NULL_OBS)", f"{null_run['ops_per_sec']:,.0f}",
        f"{null_run['p50_us']:.1f}", f"{null_run['p99_us']:.1f}",
    )
    table.add_row(
        "attached", f"{attached_run['ops_per_sec']:,.0f}",
        f"{attached_run['p50_us']:.1f}", f"{attached_run['p99_us']:.1f}",
    )
    table.add_row("attached/null", f"{ratio:.2f}x", "-", "-")
    table.print()

    # The attached registry actually measured the run.
    assert registry.histograms["wal.force"].count > 0
    assert registry.histograms["cache.flush"].count > 0
    # >= size: identity writes pass through add_operation too.
    assert registry.histograms["engine.addop"].count >= size
    assert registry.counter_value("io.log_forces") > 0

    # Instrumentation cost bar: generous because a single short lane is
    # noisy — the tight no-registry bar is the CI lane diff on `null`.
    assert ratio >= 0.5, (
        f"attached registry halved throughput ({ratio:.2f}x)"
    )

    if METRICS_OUT:
        dump_jsonl(registry, METRICS_OUT)

    _record("observability", {
        "size": size,
        "null": null_run,
        "attached": attached_run,
        "attached_over_null": ratio,
    })


def _group_commit_run(group_commit: bool, seed: int) -> Dict[str, int]:
    """The E8a driven system, group commit off/on."""
    rng = random.Random(seed)
    system = RecoverableSystem(SystemConfig(group_commit=group_commit))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=6, operations=60, object_size=64, **dict(MIXES[3][1])
        ),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.3:
            system.purge()
    system.flush_all()
    system.crash()
    system.recover()
    verify_recovered(system)
    return {
        "log_forces": system.stats.log_forces,
        "log_force_saves": system.stats.log_force_saves,
    }


@pytest.mark.benchmark(group="e10")
def test_e10_group_commit_forces(benchmark):
    def sweep():
        return {
            seed: {
                "off": _group_commit_run(False, seed),
                "on": _group_commit_run(True, seed),
            }
            for seed in range(4)
        }

    results = once(benchmark, sweep)

    table = Table(
        "E10: group commit, log forces on the E8a workload",
        ["seed", "forces off", "forces on", "saves"],
    )
    for seed, row in results.items():
        table.add_row(
            seed,
            row["off"]["log_forces"],
            row["on"]["log_forces"],
            row["on"]["log_force_saves"],
        )
    table.print()

    total_off = sum(r["off"]["log_forces"] for r in results.values())
    total_on = sum(r["on"]["log_forces"] for r in results.values())
    total_saves = sum(r["on"]["log_force_saves"] for r in results.values())
    # Group commit measurably reduces forces, and every force it saves
    # is accounted: off == on + saves, seed by seed.
    assert total_on < total_off
    assert total_saves > 0
    for row in results.values():
        assert (
            row["off"]["log_forces"]
            == row["on"]["log_forces"] + row["on"]["log_force_saves"]
        )

    _record("group_commit", {
        "total_forces_off": total_off,
        "total_forces_on": total_on,
        "total_saves": total_saves,
    })
