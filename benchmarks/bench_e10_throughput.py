"""E10 — hot-path throughput: indexed addop_rW and the group-commit WAL.

The perf companion to E4's structural story.  E4 showed *what* rW
buys (small flush sets); E10 measures *how fast* the bookkeeping runs
now that the engine is indexed:

* **graph maintenance** — ops/sec and p50/p99 per-op latency of
  ``RefinedWriteGraph.add_operation`` at 1k/5k/20k operations across
  the E4 workload mixes, against the scan-everything
  ``ReferenceWriteGraph`` (the pre-optimization implementation, kept
  verbatim in ``repro.core._reference``);
* **near-linear scaling** — the time ratio between the largest and
  smallest sizes must stay well below the quadratic baseline's;
* **end-to-end kernel runs** — ``RecoverableSystem.execute`` with
  purge pressure, the full WAL + cache + graph path;
* **group commit** — log forces with the knob off vs on over the E8a
  heavy-logical workload, both settings verified to recover.

Results are appended to ``BENCH_e10.json`` at the repo root so future
PRs can track the trajectory.  ``E10_MAX_OPS`` caps the largest size
(CI smoke runs with ``E10_MAX_OPS=1000``); the sizes and the reference
measurements scale down with it, so every assertion still runs.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro import (
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.analysis import Table
from repro.core._reference import ReferenceWriteGraph
from repro.core.history import History
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from benchmarks.conftest import once

MIXES = [
    ("physiological-only", dict(w_physical=0.2, w_touch=0.8, w_combine=0.0, w_derive=0.0)),
    ("25% logical", dict(w_physical=0.2, w_touch=0.55, w_combine=0.15, w_derive=0.1)),
    ("50% logical", dict(w_physical=0.15, w_touch=0.35, w_combine=0.3, w_derive=0.2)),
    ("75% logical", dict(w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3)),
]
HEAVY = "75% logical"

MAX_OPS = int(os.environ.get("E10_MAX_OPS", "20000"))
#: Small/medium/large — 1k/5k/20k by default, scaled down under a cap.
SIZES = sorted({max(50, MAX_OPS // 20), max(100, MAX_OPS // 4), MAX_OPS})
#: The reference graph is quadratic; it is only run at the two smaller
#: sizes (and the speedup is asserted at the middle one).
REF_SIZES = SIZES[:2]
SPEEDUP_SIZE = REF_SIZES[-1]
#: >= 10x is the acceptance bar at the real 5k size; the scaled-down
#: smoke sizes leave less quadratic work to win back.
SPEEDUP_FLOOR = 10.0 if SPEEDUP_SIZE >= 5000 else 3.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e10.json"


def _ops_for(mix: dict, size: int, seed: int = 7) -> List:
    config = LogicalWorkloadConfig(
        objects=max(64, size // 4), operations=size, object_size=32, **mix
    )
    workload = LogicalWorkload(config, seed=seed)
    history = History()
    ops = []
    for op in workload.operations():
        history.append(op)
        op.lsi = op.op_id + 1
        ops.append(op)
    return ops


def _drive(graph, ops) -> Dict[str, float]:
    """Feed ``ops`` one at a time, recording per-op latency."""
    latencies = []
    t_start = time.perf_counter()
    for op in ops:
        t0 = time.perf_counter()
        graph.add_operation(op)
        latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - t_start
    latencies.sort()
    n = len(latencies)
    return {
        "ops": n,
        "total_s": total,
        "ops_per_sec": n / total,
        "p50_us": latencies[n // 2] * 1e6,
        "p99_us": latencies[min(n - 1, int(0.99 * (n - 1)))] * 1e6,
        "nodes": len(graph),
        "collapses": graph.cycle_collapses,
    }


def _record(section: str, payload) -> None:
    """Merge one section into the BENCH_e10.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["max_ops"] = MAX_OPS
    data["sizes"] = SIZES
    data[section] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _maintenance_sweep() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {"indexed": {}, "reference": {}}
    for name, mix in MIXES:
        for size in SIZES:
            ops = _ops_for(mix, size)
            out["indexed"][f"{name}@{size}"] = _drive(RefinedWriteGraph(), ops)
    # The quadratic reference: smallest size for every mix (the
    # cross-mix table), plus the speedup size for the heavy mix only —
    # at 5k it already costs ~20s of wall clock.
    for name, mix in MIXES:
        ops = _ops_for(mix, SIZES[0])
        out["reference"][f"{name}@{SIZES[0]}"] = _drive(
            ReferenceWriteGraph(), ops
        )
    heavy_mix = dict(MIXES[3][1])
    ops = _ops_for(heavy_mix, SPEEDUP_SIZE)
    out["reference"][f"{HEAVY}@{SPEEDUP_SIZE}"] = _drive(
        ReferenceWriteGraph(), ops
    )
    return out


@pytest.mark.benchmark(group="e10")
def test_e10_graph_maintenance_throughput(benchmark):
    results = once(benchmark, _maintenance_sweep)
    indexed, reference = results["indexed"], results["reference"]

    table = Table(
        f"E10: addop_rW throughput, sizes {SIZES}",
        ["mix @ ops", "idx ops/s", "idx p50us", "idx p99us",
         "ref ops/s", "speedup"],
    )
    for key, row in indexed.items():
        ref = reference.get(key)
        table.add_row(
            key,
            f"{row['ops_per_sec']:,.0f}",
            f"{row['p50_us']:.1f}",
            f"{row['p99_us']:.1f}",
            f"{ref['ops_per_sec']:,.0f}" if ref else "-",
            f"{row['ops_per_sec'] / ref['ops_per_sec']:.1f}x" if ref else "-",
        )
    table.print()

    # Differential sanity: same graphs out of both engines.
    for key, ref in reference.items():
        assert indexed[key]["nodes"] == ref["nodes"], key
        assert indexed[key]["collapses"] == ref["collapses"], key

    # Acceptance: >= 10x on the 5k-op 75%-logical maintenance workload.
    heavy_key = f"{HEAVY}@{SPEEDUP_SIZE}"
    speedup = (
        indexed[heavy_key]["ops_per_sec"]
        / reference[heavy_key]["ops_per_sec"]
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"indexed engine only {speedup:.1f}x faster at {heavy_key}"
    )

    # Near-linear scaling: growing the op count by R must grow the
    # total time far less than the quadratic baseline's R^2.
    small, large = SIZES[0], SIZES[-1]
    ops_ratio = large / small
    quadratic = ops_ratio * ops_ratio
    scaling = {}
    for name, _ in MIXES:
        t_small = indexed[f"{name}@{small}"]["total_s"]
        t_large = indexed[f"{name}@{large}"]["total_s"]
        ratio = t_large / t_small
        scaling[name] = ratio
        assert ratio < quadratic / 2, (
            f"{name}: {large}/{small} time ratio {ratio:.0f}x is not "
            f"meaningfully below the quadratic baseline ({quadratic:.0f}x)"
        )

    _record("graph_maintenance", {
        "indexed": indexed,
        "reference": reference,
        "speedup_at": heavy_key,
        "speedup": speedup,
        "scaling_time_ratio": scaling,
        "ops_ratio": ops_ratio,
    })


def _kernel_run(size: int) -> Dict[str, float]:
    """End-to-end: execute + periodic purge through a full system."""
    rng = random.Random(11)
    system = RecoverableSystem(SystemConfig(group_commit=True))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=max(64, size // 4), operations=size, object_size=64,
            **dict(MIXES[3][1]),
        ),
        seed=11,
    )
    latencies = []
    t_start = time.perf_counter()
    for op in workload.operations():
        t0 = time.perf_counter()
        system.execute(op)
        latencies.append(time.perf_counter() - t0)
        if rng.random() < 0.05:
            system.purge()
    total = time.perf_counter() - t_start
    system.flush_all()
    latencies.sort()
    n = len(latencies)
    return {
        "ops": n,
        "total_s": total,
        "ops_per_sec": n / total,
        "p50_us": latencies[n // 2] * 1e6,
        "p99_us": latencies[min(n - 1, int(0.99 * (n - 1)))] * 1e6,
    }


@pytest.mark.benchmark(group="e10")
def test_e10_end_to_end_kernel(benchmark):
    sizes = REF_SIZES  # the two smaller sizes bound the wall clock
    results = once(
        benchmark, lambda: {size: _kernel_run(size) for size in sizes}
    )

    table = Table(
        "E10: end-to-end kernel throughput (execute + purge, 75% logical)",
        ["ops", "ops/s", "p50us", "p99us"],
    )
    for size, row in results.items():
        table.add_row(
            size,
            f"{row['ops_per_sec']:,.0f}",
            f"{row['p50_us']:.1f}",
            f"{row['p99_us']:.1f}",
        )
    table.print()

    # The full path has linear per-op work (logging, cache, oracle), so
    # doubling and more the op count must not crater throughput.
    small, large = sizes[0], sizes[-1]
    ops_ratio = large / small
    time_ratio = results[large]["total_s"] / results[small]["total_s"]
    assert time_ratio < ops_ratio * ops_ratio / 2

    _record(
        "kernel_end_to_end",
        {str(size): row for size, row in results.items()},
    )


def _group_commit_run(group_commit: bool, seed: int) -> Dict[str, int]:
    """The E8a driven system, group commit off/on."""
    rng = random.Random(seed)
    system = RecoverableSystem(SystemConfig(group_commit=group_commit))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=6, operations=60, object_size=64, **dict(MIXES[3][1])
        ),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.3:
            system.purge()
    system.flush_all()
    system.crash()
    system.recover()
    verify_recovered(system)
    return {
        "log_forces": system.stats.log_forces,
        "log_force_saves": system.stats.log_force_saves,
    }


@pytest.mark.benchmark(group="e10")
def test_e10_group_commit_forces(benchmark):
    def sweep():
        return {
            seed: {
                "off": _group_commit_run(False, seed),
                "on": _group_commit_run(True, seed),
            }
            for seed in range(4)
        }

    results = once(benchmark, sweep)

    table = Table(
        "E10: group commit, log forces on the E8a workload",
        ["seed", "forces off", "forces on", "saves"],
    )
    for seed, row in results.items():
        table.add_row(
            seed,
            row["off"]["log_forces"],
            row["on"]["log_forces"],
            row["on"]["log_force_saves"],
        )
    table.print()

    total_off = sum(r["off"]["log_forces"] for r in results.values())
    total_on = sum(r["on"]["log_forces"] for r in results.values())
    total_saves = sum(r["on"]["log_force_saves"] for r in results.values())
    # Group commit measurably reduces forces, and every force it saves
    # is accounted: off == on + saves, seed by seed.
    assert total_on < total_off
    assert total_saves > 0
    for row in results.values():
        assert (
            row["off"]["log_forces"]
            == row["on"]["log_forces"] + row["on"]["log_force_saves"]
        )

    _record("group_commit", {
        "total_forces_off": total_off,
        "total_forces_on": total_on,
        "total_saves": total_saves,
    })
