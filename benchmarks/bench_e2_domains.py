"""E2 — Section 1's motivating domains: normal-execution logging cost.

Three sub-experiments, one per domain the paper motivates:

* **E2a application recovery** — a read→execute→write pipeline per
  input file, under the three logging schemes: this paper's fully
  logical scheme (R and W_L logical), the ICDE-98 [7] scheme (R
  logical, writes physical), and a fully physiological baseline.
  Expected: logical logs no data values at all; [7] pays for every
  output; physiological pays for inputs and outputs.
* **E2b file system** — copy and sort of whole files: logical logging
  writes identifiers, physical logging writes the derived file images.
* **E2c B-tree splits** — logical split-copy vs logging the new page
  image physiologically.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro import RecoverableSystem
from repro.analysis import Table, format_bytes, ratio
from repro.domains import AppLoggingMode, FsLoggingMode, SplitLoggingMode
from repro.workloads import (
    app_pipeline_workload,
    btree_insert_workload,
    fs_batch_workload,
)
from benchmarks.conftest import once

OBJECT_SIZE = 16 * 1024
PIPELINES = 10


def _app_costs() -> Dict[str, Dict[str, int]]:
    out = {}
    for mode in AppLoggingMode:
        system = RecoverableSystem()
        app_pipeline_workload(
            system, pipelines=PIPELINES, object_size=OBJECT_SIZE, mode=mode
        )
        stats = system.stats
        out[mode.value] = {
            "log_bytes": stats.log_bytes,
            "value_bytes": stats.log_value_bytes,
            "records": stats.log_records,
        }
    return out


def _fs_costs() -> Dict[str, Dict[str, int]]:
    out = {}
    for mode in FsLoggingMode:
        system = RecoverableSystem()
        fs_batch_workload(
            system, files=8, object_size=OBJECT_SIZE, mode=mode
        )
        out[mode.value] = {
            "log_bytes": system.stats.log_bytes,
            "value_bytes": system.stats.log_value_bytes,
        }
    return out


def _btree_costs() -> Dict[str, Dict[str, int]]:
    out = {}
    for mode in SplitLoggingMode:
        system = RecoverableSystem()
        btree_insert_workload(
            system, inserts=300, capacity=8, value_size=128, mode=mode
        )
        out[mode.value] = {
            "log_bytes": system.stats.log_bytes,
            "value_bytes": system.stats.log_value_bytes,
        }
    return out


@pytest.mark.benchmark(group="e2")
def test_e2a_application_logging_modes(benchmark):
    costs = once(benchmark, _app_costs)
    # Input-file creation is identical across modes; subtract nothing,
    # just report totals (creation dominates neither claim).
    table = Table(
        f"E2a: application recovery, {PIPELINES} pipelines of "
        f"{format_bytes(OBJECT_SIZE)} objects",
        ["scheme", "log bytes", "data-value bytes", "records"],
    )
    for scheme, row in costs.items():
        table.add_row(
            scheme,
            format_bytes(row["log_bytes"]),
            format_bytes(row["value_bytes"]),
            row["records"],
        )
    table.print()

    logical = costs[AppLoggingMode.LOGICAL.value]
    icde = costs[AppLoggingMode.ICDE98.value]
    physio = costs[AppLoggingMode.PHYSIOLOGICAL.value]
    # The input files themselves are physical writes in every mode;
    # beyond that, the logical scheme logs zero data values.
    base_values = PIPELINES * OBJECT_SIZE  # the external input files
    assert logical["value_bytes"] == base_values
    # [7] additionally logs every application write (one output/pipe).
    assert icde["value_bytes"] >= base_values + PIPELINES * OBJECT_SIZE
    # Physiological additionally logs every application read too.
    assert physio["value_bytes"] >= icde["value_bytes"] + PIPELINES * OBJECT_SIZE


@pytest.mark.benchmark(group="e2")
def test_e2b_filesystem_copy_sort(benchmark):
    costs = once(benchmark, _fs_costs)
    table = Table(
        "E2b: file system, 8 files copied + sorted "
        f"({format_bytes(OBJECT_SIZE)} each)",
        ["scheme", "log bytes", "data-value bytes", "vs logical"],
    )
    logical_bytes = costs[FsLoggingMode.LOGICAL.value]["log_bytes"]
    for scheme, row in costs.items():
        table.add_row(
            scheme,
            format_bytes(row["log_bytes"]),
            format_bytes(row["value_bytes"]),
            ratio(row["log_bytes"], logical_bytes),
        )
    table.print()

    physical = costs[FsLoggingMode.PHYSICAL.value]
    logical = costs[FsLoggingMode.LOGICAL.value]
    # 16 derived files of 16 KiB each were NOT logged logically.
    assert physical["value_bytes"] - logical["value_bytes"] >= 16 * OBJECT_SIZE
    assert physical["log_bytes"] > 2 * logical["log_bytes"]


def _index_costs() -> Dict[str, Dict[str, int]]:
    from repro.domains import IndexedKVStore, IndexLoggingMode
    from benchmarks.conftest import payload as make_payload

    out = {}
    for mode in IndexLoggingMode:
        system = RecoverableSystem()
        store = IndexedKVStore(system, mode=mode)
        # 40 puts over 20 keys: half are updates, costing an index
        # remove + add each.
        for round_index in range(40):
            key = f"k{round_index % 20}"
            store.put(key, make_payload(f"{key}:{round_index}", 4096))
        store.check_index_consistency()
        out[mode.value] = {
            "log_bytes": system.stats.log_bytes,
            "value_bytes": system.stats.log_value_bytes,
        }
    return out


@pytest.mark.benchmark(group="e2")
def test_e2d_secondary_index_maintenance(benchmark):
    """Index entries are derivable from the base record: logical
    maintenance reads it from the recoverable page instead of logging
    the value again (a second database use of the Figure 1 shapes)."""
    costs = once(benchmark, _index_costs)
    table = Table(
        "E2d: secondary-index maintenance, 40 puts of 4 KiB records",
        ["index scheme", "log bytes", "data-value bytes"],
    )
    for scheme, row in costs.items():
        table.add_row(
            scheme,
            format_bytes(row["log_bytes"]),
            format_bytes(row["value_bytes"]),
        )
    table.print()

    logical = costs["logical"]
    physio = costs["physiological"]
    # Base puts (40 x 4 KiB) are logged in both schemes; the index
    # operations roughly double that physiologically and add nothing
    # logically.
    assert logical["value_bytes"] < 41 * 4096
    assert physio["value_bytes"] > 1.8 * logical["value_bytes"]


def _ctas_costs() -> Dict[str, Dict[str, int]]:
    from repro.domains import CtasLoggingMode, RelationalStore
    from benchmarks.conftest import payload as make_payload

    out = {}
    for mode in CtasLoggingMode:
        system = RecoverableSystem()
        db = RelationalStore(system, mode=mode)
        rows = [(i, make_payload(f"row{i}", 256)) for i in range(400)]
        db.create_table("events", ["id", "blob"], rows)
        before = system.stats.log_bytes
        db.create_table_as("recent", "events", where=("id", ">=", 100))
        db.create_table_as("ordered", "recent", order_by="id")
        out[mode.value] = {
            "ctas_log_bytes": system.stats.log_bytes - before,
            "value_bytes": system.stats.log_value_bytes,
        }
    return out


@pytest.mark.benchmark(group="e2")
def test_e2e_create_table_as_select(benchmark):
    """Whole-table derivations: the largest-object case.  A logical
    CTAS logs ids + the query; a physical one logs the derived table."""
    costs = once(benchmark, _ctas_costs)
    table = Table(
        "E2e: CREATE TABLE AS SELECT, 400-row (100 KiB) source, 2 CTAS",
        ["scheme", "CTAS log bytes", "total data-value bytes"],
    )
    for scheme, row in costs.items():
        table.add_row(
            scheme,
            format_bytes(row["ctas_log_bytes"]),
            format_bytes(row["value_bytes"]),
        )
    table.print()

    logical = costs["logical"]
    physical = costs["physical"]
    assert logical["ctas_log_bytes"] < 1024  # identifiers + predicate
    assert physical["ctas_log_bytes"] > 100 * 1024  # two derived tables


@pytest.mark.benchmark(group="e2")
def test_e2c_btree_split_logging(benchmark):
    costs = once(benchmark, _btree_costs)
    table = Table(
        "E2c: B-tree, 300 inserts (128 B values, capacity 8)",
        ["split scheme", "log bytes", "data-value bytes"],
    )
    for scheme, row in costs.items():
        table.add_row(
            scheme,
            format_bytes(row["log_bytes"]),
            format_bytes(row["value_bytes"]),
        )
    table.print()

    logical = costs[SplitLoggingMode.LOGICAL.value]
    physio = costs[SplitLoggingMode.PHYSIOLOGICAL.value]
    assert logical["value_bytes"] < physio["value_bytes"]
    assert logical["log_bytes"] < physio["log_bytes"]
