"""E4 — write-graph structure at scale: W versus rW over random logical
workloads.

Sweeps the share of logical (multi-object-dependency) operations in a
random workload and reports, for each graph: node count, mean/max
atomic-flush-set size, the fraction of nodes flushable one object at a
time (singletons or smaller), and rW's cycle-collapse count.

Expected shape: as the logical share grows, W's atomic flush sets
coalesce and grow without bound, while rW keeps most nodes at singleton
flush sets because later blind writes keep un-exposing objects.  This
is Section 3's quantitative story.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List

import pytest

from repro.analysis import Table
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.core.write_graph import BatchWriteGraph
from repro.workloads import LogicalWorkload, LogicalWorkloadConfig
from benchmarks.conftest import once

MIXES = [
    ("physiological-only", dict(w_physical=0.2, w_touch=0.8, w_combine=0.0, w_derive=0.0)),
    ("25% logical", dict(w_physical=0.2, w_touch=0.55, w_combine=0.15, w_derive=0.1)),
    ("50% logical", dict(w_physical=0.15, w_touch=0.35, w_combine=0.3, w_derive=0.2)),
    ("75% logical", dict(w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3)),
]
OPERATIONS = 120
OBJECTS = 10
SEEDS = range(5)


def _ops_for(mix: dict, seed: int) -> List:
    config = LogicalWorkloadConfig(
        objects=OBJECTS, operations=OPERATIONS, object_size=32, **mix
    )
    workload = LogicalWorkload(config, seed=seed)
    history = History()
    ops = []
    for op in workload.operations():
        history.append(op)
        op.lsi = op.op_id + 1
        ops.append(op)
    return ops


def _measure(mix: dict) -> Dict[str, float]:
    rw_sizes: List[int] = []
    w_sizes: List[int] = []
    collapses = 0
    for seed in SEEDS:
        ops = _ops_for(mix, seed)
        rw = RefinedWriteGraph()
        for op in ops:
            rw.add_operation(op)
        collapses += rw.cycle_collapses
        rw_sizes.extend(len(n.vars) for n in rw.nodes)
        w = BatchWriteGraph(InstallationGraph(ops))
        w_sizes.extend(len(n.vars) for n in w.nodes)
    return {
        "rw_mean": mean(rw_sizes),
        "rw_max": max(rw_sizes),
        "rw_single": sum(1 for s in rw_sizes if s <= 1) / len(rw_sizes),
        "w_mean": mean(w_sizes),
        "w_max": max(w_sizes),
        "w_single": sum(1 for s in w_sizes if s <= 1) / len(w_sizes),
        "rw_collapses": collapses,
    }


def _sweep() -> Dict[str, Dict[str, float]]:
    return {name: _measure(mix) for name, mix in MIXES}


@pytest.mark.benchmark(group="e4")
def test_e4_flush_set_sizes(benchmark):
    results = once(benchmark, _sweep)

    table = Table(
        f"E4: atomic flush-set sizes, {OPERATIONS} ops x {len(SEEDS)} seeds, "
        f"{OBJECTS} objects",
        ["workload mix", "W mean", "W max", "W <=1", "rW mean", "rW max",
         "rW <=1", "rW cycle collapses"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            f"{row['w_mean']:.2f}",
            row["w_max"],
            f"{row['w_single']:.0%}",
            f"{row['rw_mean']:.2f}",
            row["rw_max"],
            f"{row['rw_single']:.0%}",
            row["rw_collapses"],
        )
    table.print()

    # Physiological-only: the degenerate case, both graphs identical.
    degenerate = results["physiological-only"]
    assert degenerate["w_max"] == 1
    assert degenerate["rw_max"] == 1

    # Under heavy logical mixes, rW's flush sets stay far smaller.
    heavy = results["75% logical"]
    assert heavy["rw_mean"] < heavy["w_mean"]
    assert heavy["rw_max"] <= heavy["w_max"]
    assert heavy["rw_single"] > heavy["w_single"]


def _incremental_maintenance(ops) -> RefinedWriteGraph:
    graph = RefinedWriteGraph()
    for op in ops:
        graph.add_operation(op)
    return graph


@pytest.mark.benchmark(group="e4-timing")
def test_e4_addop_rw_throughput(benchmark):
    """Wall-clock cost of incremental rW maintenance (addop_rW)."""
    ops = _ops_for(dict(MIXES[2][1]), seed=0)
    graph = benchmark(_incremental_maintenance, ops)
    assert graph.is_acyclic()


def _batch_w_per_op(ops) -> int:
    """The naive alternative to incremental maintenance: recompute the
    batch W graph after every arriving operation (what a cache manager
    without addop_rW would do)."""
    count = 0
    for prefix_length in range(1, len(ops) + 1):
        graph = BatchWriteGraph(InstallationGraph(ops[:prefix_length]))
        count += len(graph.nodes)
    return count


@pytest.mark.benchmark(group="e4-timing")
def test_e4_batch_w_recompute_throughput(benchmark):
    """Recomputing W per operation, for contrast with addop_rW — the
    reason Figure 6 gives an *incremental* construction."""
    ops = _ops_for(dict(MIXES[2][1]), seed=0)
    benchmark(_batch_w_per_op, ops)
