"""E15 — replication: failover time, witness redo lag, shipping cost.

E12 proved one daemon loses nothing it acked across a SIGKILL.  E15
measures the replicated pair (``repro.replica``): a primary that ships
every forced WAL record to a witness before acking, and a witness that
continuously redoes the shipped log so promotion is a bounded amount of
catch-up, not a full replay.  Three lanes:

* **failover campaign** — ``E15_RUNS`` seeded torture-v5 runs (CI
  smoke: ``E15_RUNS=6``), each killing or fencing the primary under
  concurrent client load, promoting the witness, and auditing
  exactly-once visibility across the pair.  Expected zero acked-write
  losses and zero post-promotion acks from the old epoch; the kill-lane
  failover times give the distribution (``seconds_per_failover_p50`` /
  ``_p95``) the runbook quotes;
* **redo lag watermark** — one quiet pair driven with
  ``E15_LAG_WRITES`` forced puts while sampling the witness's
  ship/adopt/materialize watermarks: ``lag_records_peak`` is the worst
  observed distance between the primary's announcements and the
  witness's durable log (must drain to 0 when the writers stop),
  ``lag_redo_records_peak`` the worst distance between the durable log
  and materialized state (bounded by the redo cadence);
* **shipping cost** — acked puts/second standalone
  (``acked_per_s_standalone``) vs. through the semi-synchronous pair
  (``acked_per_s_replicated``), so the durability upgrade's price has a
  number and a trajectory.

Results are appended to ``BENCH_e15.json`` at the repo root;
``benchmarks/diff_trajectory.py`` treats ``seconds_per_*`` and
``lag_*`` lanes as lower-is-better and ``acked_per_s*`` as
higher-is-better.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis import Table
from repro.kernel.system import RecoverableSystem
from repro.replica import (
    ReplicaLiveFireConfig,
    ReplicaLiveFireHarness,
    ReplicationConfig,
    WitnessConfig,
    WitnessDaemon,
)
from repro.serve import (
    DaemonClient,
    DaemonConfig,
    RetryPolicy,
    ServeDaemon,
)
from repro.workloads import register_workload_functions
from benchmarks.conftest import once

#: Seeded kill/zombie-promote runs in the campaign (CI smoke: E15_RUNS=6).
RUNS = int(os.environ.get("E15_RUNS", "100"))
#: Forced puts driven while sampling the witness watermarks.
LAG_WRITES = int(os.environ.get("E15_LAG_WRITES", "200"))
#: Puts per throughput lane (standalone and replicated).
THROUGHPUT_OPS = int(os.environ.get("E15_THROUGHPUT_OPS", "300"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e15.json"


def _record(section: str, payload) -> None:
    """Merge one section into the BENCH_e15.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["runs"] = RUNS
    data[section] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _start_pair(max_queue: int = 64):
    """One primary (replication on) + attached witness, both in-process."""
    primary_system = RecoverableSystem()
    register_workload_functions(primary_system.registry)
    primary = ServeDaemon(
        primary_system,
        DaemonConfig(port=0, http_port=None, max_queue=max_queue,
                     retry_after_ms=5),
        replication=ReplicationConfig(ack_timeout_s=5.0, retry_after_ms=5),
    ).start()
    witness_system = RecoverableSystem()
    register_workload_functions(witness_system.registry)
    witness = WitnessDaemon(
        witness_system,
        DaemonConfig(port=0, http_port=None, max_queue=max_queue,
                     retry_after_ms=5),
        witness=WitnessConfig(
            primary_port=primary.port,
            redo_every_records=32,
            reconnect_delay_s=0.02,
        ),
    ).start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if witness.attached and primary.replication.attached:
            break
        time.sleep(0.01)
    else:
        witness.stop(graceful=False)
        primary.kill()
        raise RuntimeError("witness never attached to the primary")
    return primary, witness


# ----------------------------------------------------------------------
# lane 1: the failover campaign (torture v5)
# ----------------------------------------------------------------------
def _campaign() -> Dict:
    harness = ReplicaLiveFireHarness(ReplicaLiveFireConfig())
    t0 = time.perf_counter()
    report = harness.campaign(RUNS, seed=0)
    elapsed = time.perf_counter() - t0
    kill_failovers = [
        outcome.failover_seconds
        for outcome in report.outcomes
        if outcome.lane == "kill" and outcome.promoted
    ]
    return {
        "runs": len(report.outcomes),
        "failed": len(report.failures()),
        "kill_runs": sum(1 for o in report.outcomes if o.lane == "kill"),
        "zombie_runs": sum(1 for o in report.outcomes if o.lane == "zombie"),
        "acked_writes": report.total_acked,
        "acked_losses": report.total_losses,
        "old_epoch_acks": report.total_old_epoch_acks,
        "promoted": sum(1 for o in report.outcomes if o.promoted),
        "redo_cycles": sum(o.redo_cycles for o in report.outcomes),
        "seconds_per_failover_p50": _percentile(kill_failovers, 0.50),
        "seconds_per_failover_p95": _percentile(kill_failovers, 0.95),
        "seconds_per_failover_max": max(kill_failovers) if kill_failovers
        else 0.0,
        "wall_s": elapsed,
        "_report": report,
    }


@pytest.mark.benchmark(group="e15")
def test_e15_failover_campaign(benchmark):
    result = once(benchmark, _campaign)
    report = result.pop("_report")

    table = Table(
        f"E15: failover campaign ({RUNS} seeded kill/zombie-promote runs)",
        ["metric", "value"],
    )
    for key, value in result.items():
        table.add_row(
            key, f"{value:.4f}" if isinstance(value, float) else value
        )
    table.print()

    assert report.ok, report.summary() + "; " + "; ".join(
        f"{o.description}: {o.error or o.losses}" for o in report.failures()
    )
    # The headline claims: every run promoted and lost nothing it acked,
    # and the fence held — no post-promotion ack from the old epoch.
    assert result["acked_writes"] > 0
    assert result["acked_losses"] == 0
    assert result["old_epoch_acks"] == 0
    assert result["promoted"] == result["runs"]
    # The witness was actually redoing, not just hoarding records.
    assert result["redo_cycles"] > 0

    _record("failover_campaign", result)


# ----------------------------------------------------------------------
# lane 2: the witness redo-lag watermark
# ----------------------------------------------------------------------
def _redo_lag() -> Dict:
    primary, witness = _start_pair()
    try:
        client = DaemonClient(
            "127.0.0.1", primary.port, policy=RetryPolicy(attempts=3)
        )
        payload = b"r" * 64
        peak_lag = 0
        peak_redo_lag = 0
        t0 = time.perf_counter()
        for index in range(LAG_WRITES):
            client.put(f"lag:{index % 16}", payload)
            status = witness.replication_status()
            peak_lag = max(peak_lag, status["lag_records"])
            peak_redo_lag = max(peak_redo_lag, status["redo_lag_records"])
        elapsed = time.perf_counter() - t0
        client.close()
        # The firehose has stopped: the *durable* lag must drain to
        # zero (every ack waited for the witness's receipt, so the last
        # ack implies adopted == announced).  The *materialize* lag is
        # bounded by the redo cadence — the tail below one
        # ``redo_every_records`` batch stays un-redone until the next
        # cycle or promotion's final catch-up, by design.
        deadline = time.monotonic() + 5.0
        drained = None
        while time.monotonic() < deadline:
            drained = witness.replication_status()["lag_records"]
            if drained == 0:
                break
            time.sleep(0.01)
        final = witness.replication_status()
        return {
            "writes": LAG_WRITES,
            "lag_records_peak": peak_lag,
            "lag_redo_records_peak": peak_redo_lag,
            "lag_records_drained": drained,
            "lag_redo_records_final": final["redo_lag_records"],
            "redo_every_records": 32,
            "redo_cycles": final["redo_cycles"],
            "materialized_through": final["materialized_through"],
            "wall_s": elapsed,
        }
    finally:
        witness.stop(graceful=False)
        primary.kill()


@pytest.mark.benchmark(group="e15")
def test_e15_redo_lag(benchmark):
    result = once(benchmark, _redo_lag)

    table = Table(
        f"E15: witness redo lag under {LAG_WRITES} forced puts",
        ["metric", "value"],
    )
    for key, value in result.items():
        table.add_row(
            key, f"{value:.2f}" if isinstance(value, float) else value
        )
    table.print()

    # Semi-synchronous shipping bounds the durable lag at the batch the
    # witness is currently acking, and it must drain to zero once the
    # writers stop; the materialize lag is bounded by the redo cadence
    # (the un-redone tail is always smaller than one cycle's batch).
    assert result["lag_records_drained"] == 0
    assert result["lag_redo_records_final"] < result["redo_every_records"]
    assert result["redo_cycles"] > 0
    assert result["materialized_through"] > 0

    _record("redo_lag", result)


# ----------------------------------------------------------------------
# lane 3: the shipping cost (throughput replication off vs. on)
# ----------------------------------------------------------------------
def _throughput() -> Dict:
    payload = b"x" * 64
    # Standalone: the E12 clean path, re-measured here so both numbers
    # come from the same machine and moment.
    system = RecoverableSystem()
    register_workload_functions(system.registry)
    daemon = ServeDaemon(
        system, DaemonConfig(port=0, http_port=None)
    ).start()
    try:
        client = DaemonClient(
            "127.0.0.1", daemon.port, policy=RetryPolicy(attempts=2)
        )
        t0 = time.perf_counter()
        for index in range(THROUGHPUT_OPS):
            client.put(f"tp:{index % 16}", payload)
        standalone_s = time.perf_counter() - t0
        client.close()
    finally:
        daemon.kill()
    # Replicated: every ack now waits for the witness's durable receipt.
    primary, witness = _start_pair()
    try:
        client = DaemonClient(
            "127.0.0.1", primary.port, policy=RetryPolicy(attempts=3)
        )
        t0 = time.perf_counter()
        for index in range(THROUGHPUT_OPS):
            client.put(f"tp:{index % 16}", payload)
        replicated_s = time.perf_counter() - t0
        client.close()
    finally:
        witness.stop(graceful=False)
        primary.kill()
    standalone = THROUGHPUT_OPS / standalone_s if standalone_s > 0 else 0.0
    replicated = THROUGHPUT_OPS / replicated_s if replicated_s > 0 else 0.0
    return {
        "ops": THROUGHPUT_OPS,
        "acked_per_s_standalone": standalone,
        "acked_per_s_replicated": replicated,
        "replication_cost_x": standalone / replicated if replicated else 0.0,
        "wall_s": standalone_s + replicated_s,
    }


@pytest.mark.benchmark(group="e15")
def test_e15_throughput(benchmark):
    result = once(benchmark, _throughput)

    table = Table(
        f"E15: shipping cost ({THROUGHPUT_OPS} forced puts per lane)",
        ["metric", "value"],
    )
    for key, value in result.items():
        table.add_row(
            key, f"{value:.2f}" if isinstance(value, float) else value
        )
    table.print()

    # Both paths must ack at an operable rate; semi-synchronous shipping
    # adds one loopback round trip + one witness force per ack, so the
    # slowdown should be a small constant factor, not an order of
    # magnitude.
    assert result["acked_per_s_standalone"] > 100
    assert result["acked_per_s_replicated"] > 50
    assert result["replication_cost_x"] < 10

    _record("shipping_cost", result)
