"""E9 — recovery under a faulty device: exhaustive sweep + seeded fuzz.

E7 established that recovery survives clean crashes at every operation
boundary.  E9 tightens the adversary to a misbehaving *device*: for the
same crash-matrix workload, every numbered I/O point is hit with every
must-survive fault kind — torn intra-object write (with an immediate
crash), transient I/O error (absorbed by bounded retry), silent
corruption (caught by checksum, quarantined, healed by media-style
replay) — across the cache configurations of E7, and a 500-schedule
seeded fuzz samples multi-fault combinations.  Expected: 100%
recovered-equals-oracle everywhere, with the retry/quarantine machinery
visibly doing the work (nonzero counters).
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro import CacheConfig, GraphMode, MultiObjectStrategy
from repro.analysis import Table, fault_summary
from repro.kernel.torture import TortureConfig, TortureHarness
from repro.storage import FlushTransaction, ShadowInstall
from benchmarks.conftest import once

CONFIGS = {
    "rW + identity": lambda: CacheConfig(),
    "rW + shadow": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=ShadowInstall(),
    ),
    "rW + flush-txn": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=FlushTransaction(),
    ),
    "W + shadow": lambda: CacheConfig(
        graph_mode=GraphMode.W,
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=ShadowInstall(),
    ),
    # Constant eviction pressure: store reads join the fault surface.
    "rW + identity + cap4": lambda: _capacity_config(),
}

FUZZ_RUNS = 500


def _capacity_config() -> CacheConfig:
    from repro.cache.policies import PeelHottest

    return CacheConfig(capacity=4, victim_policy=PeelHottest())


def _campaigns() -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for name, factory in CONFIGS.items():
        harness = TortureHarness(TortureConfig(cache_factory=factory))
        report = harness.sweep()
        out[name] = {"sweep": report}
    # Fuzz on the default configuration: one long seeded campaign.
    fuzz_harness = TortureHarness(TortureConfig())
    out["rW + identity"]["fuzz"] = fuzz_harness.fuzz(runs=FUZZ_RUNS, seed=0)
    return out


@pytest.mark.benchmark(group="e9")
def test_e9_fault_sweep(benchmark):
    results = once(benchmark, _campaigns)

    table = Table(
        "E9: fault sweep (recovered == oracle under injected faults)",
        ["configuration", "points", "runs", "ok", "retries", "quarantines"],
    )
    grand_totals: Dict[str, int] = {}
    for name, campaigns in results.items():
        for mode in ("sweep", "fuzz"):
            report = campaigns.get(mode)
            if report is None:
                continue
            label = name if mode == "sweep" else f"{name} (fuzz x{FUZZ_RUNS})"
            table.add_row(
                label,
                report.points,
                len(report.outcomes),
                len(report.outcomes) - len(report.failures()),
                report.totals.get("fault_retries", 0),
                report.totals.get("quarantines", 0),
            )
            for key, value in report.totals.items():
                grand_totals[key] = grand_totals.get(key, 0) + value
    table.print()
    fault_summary(grand_totals, title="E9: fault ledger (all campaigns)").print()

    for name, campaigns in results.items():
        for mode, report in campaigns.items():
            assert report.ok, (
                f"{name} {mode} failed: "
                + "; ".join(
                    f"{o.description}: {o.error}" for o in report.failures()
                )
            )
    # The sweep must have exercised the machinery, not tiptoed past it.
    assert grand_totals["faults_injected"] > 0
    assert grand_totals["fault_retries"] > 0
    assert grand_totals["quarantines"] > 0
    assert grand_totals["media_recoveries"] > 0
