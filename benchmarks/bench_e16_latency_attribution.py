"""E16 — latency attribution: where an acked write's milliseconds go.

E10 priced the kernel's instrumentation; E15 priced replication as a
whole.  E16 decomposes one acked write's end-to-end latency into the
named stages the tracing tentpole records — queue wait, apply, WAL
force, replication wait (and inside it the ship, the witness's durable
adopt and its ack) — and checks the decomposition is *honest*: every
stage non-negative, and the stages reconstructed from the trace tree
sum to approximately the client-observed latency rather than inventing
or losing time.  Two lanes:

* **stage attribution** — ``E16_WRITES`` traced puts through a live
  primary/witness pair; every ``ack.*_ms`` / ``repl.ship_ms`` /
  ``witness.*_ms`` histogram must have fired, and the last write's
  trace tree (stitched from the client, primary and witness registries
  exactly the way ``python -m repro trace`` does it) must be one
  complete tree whose stage sum is within slack of the client span.
  Stage p50s are recorded as ``stage_ms_*`` lanes (lower is better);
* **tracing overhead** — acked puts/second with an untraced client
  (no registry ⇒ no ``trace`` field on the wire) vs. a traced one
  against the same single daemon: ``acked_per_s_untraced`` /
  ``acked_per_s_traced`` plus the ratio sanity bar.

Results are appended to ``BENCH_e16.json`` at the repo root;
``benchmarks/diff_trajectory.py`` treats ``stage_ms_*`` as
lower-is-better and ``acked_per_s*`` as higher-is-better.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis import Table
from repro.kernel.system import RecoverableSystem
from repro.obs import MetricsRegistry
from repro.obs.tracetree import build_trace, trace_has_stages
from repro.replica import ReplicationConfig, WitnessConfig, WitnessDaemon
from repro.serve import DaemonClient, DaemonConfig, ServeDaemon
from repro.workloads import register_workload_functions
from benchmarks.conftest import once

#: Traced puts in the attribution lane (CI smoke: E16_WRITES=40).
WRITES = int(os.environ.get("E16_WRITES", "150"))
#: Puts per overhead lane (untraced and traced).
THROUGHPUT_OPS = int(os.environ.get("E16_THROUGHPUT_OPS", "300"))

#: The stages a replicated acked write must decompose into.
STAGES = (
    "ack.queue_ms",
    "ack.apply_ms",
    "ack.force_ms",
    "ack.repl_wait_ms",
    "repl.ship_ms",
    "witness.adopt_ms",
    "witness.ack_ms",
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e16.json"


def _record(section: str, payload) -> None:
    """Merge one section into the BENCH_e16.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["writes"] = WRITES
    data[section] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _start_pair():
    """One primary (replication on) + attached witness, in-process."""
    primary_system = RecoverableSystem()
    register_workload_functions(primary_system.registry)
    primary_system.attach_metrics(MetricsRegistry())
    primary = ServeDaemon(
        primary_system,
        DaemonConfig(port=0, http_port=None, retry_after_ms=5),
        replication=ReplicationConfig(ack_timeout_s=5.0, retry_after_ms=5),
    ).start()
    witness_system = RecoverableSystem()
    register_workload_functions(witness_system.registry)
    witness_system.attach_metrics(MetricsRegistry())
    witness = WitnessDaemon(
        witness_system,
        DaemonConfig(port=0, http_port=None, retry_after_ms=5),
        witness=WitnessConfig(
            primary_port=primary.port,
            redo_every_records=64,
            reconnect_delay_s=0.02,
        ),
    ).start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if witness.attached and primary.replication.attached:
            break
        time.sleep(0.01)
    else:
        witness.stop(graceful=False)
        primary.kill()
        raise RuntimeError("witness never attached to the primary")
    return primary, witness


def _registry_spans(registry: MetricsRegistry) -> List[Dict]:
    """Span events in the shape ``collect_spans`` produces from JSONL."""
    return [event for event in registry.span_events()
            if (event.get("tags") or {}).get("trace")]


# ----------------------------------------------------------------------
# lane 1: stage attribution over a live pair
# ----------------------------------------------------------------------
def _attribution() -> Dict:
    primary, witness = _start_pair()
    client_registry = MetricsRegistry()
    client = DaemonClient("127.0.0.1", primary.port, obs=client_registry)
    try:
        for index in range(WRITES):
            client.request("put", obj=f"obj{index % 8}", value=index)
        last_trace = client.last_trace
    finally:
        client.close()
        witness.stop(graceful=False)
        primary.stop()

    spans = (
        _registry_spans(client_registry)
        + _registry_spans(primary.system.obs)
        + _registry_spans(witness.system.obs)
    )
    roots = build_trace(spans, last_trace)
    assert trace_has_stages(
        roots, ["client.put", "ack.queue_ms", "ack.apply_ms",
                "ack.force_ms", "ack.repl_wait_ms", "repl.ship_ms",
                "witness.adopt_ms", "witness.ack_ms"]
    ), "last write did not reconstruct into one complete trace tree"
    tree = roots[0].walk()
    assert all(node.seconds >= 0.0 for node in tree)
    client_ms = roots[0].ms
    # Direct children partition the client's wait (the witness chain is
    # nested inside ack.repl_wait_ms, so it must not be double-counted).
    stage_ms = sum(child.ms for child in roots[0].children)
    assert stage_ms <= client_ms * 1.25 + 1.0, (
        f"stages invent time: {stage_ms:.3f} ms attributed vs "
        f"{client_ms:.3f} ms observed by the client"
    )

    snap_primary = primary.system.obs.snapshot()["histograms"]
    snap_witness = witness.system.obs.snapshot()["histograms"]
    merged = dict(snap_witness)
    merged.update(snap_primary)
    stages = {}
    for name in STAGES:
        assert name in merged, f"stage histogram {name} never fired"
        hist = merged[name]
        assert hist["count"] > 0 and hist["min"] >= 0.0
        stages[name] = hist
    return {
        "client_ms": client_ms,
        "attributed_ms": stage_ms,
        "stages": stages,
    }


@pytest.mark.benchmark(group="e16")
def test_e16_stage_attribution(benchmark):
    result = once(benchmark, _attribution)

    table = Table(
        f"E16: per-stage latency attribution over {WRITES} replicated "
        "acked puts",
        ["stage", "count", "p50 ms", "p95 ms", "p99 ms"],
    )
    for name in STAGES:
        hist = result["stages"][name]
        table.add_row(
            name, hist["count"], f"{hist['p50']:.3f}",
            f"{hist['p95']:.3f}", f"{hist['p99']:.3f}",
        )
    table.print()
    print(
        f"last write: client {result['client_ms']:.3f} ms, "
        f"stage sum {result['attributed_ms']:.3f} ms"
    )

    _record("stage_attribution", {
        "client_ms": result["client_ms"],
        "attributed_ms": result["attributed_ms"],
        **{
            "stage_ms_" + name.replace(".", "_"):
                result["stages"][name]["p50"]
            for name in STAGES
        },
    })


# ----------------------------------------------------------------------
# lane 2: the tracing tax on an acked write
# ----------------------------------------------------------------------
def _throughput(traced: bool) -> float:
    system = RecoverableSystem()
    register_workload_functions(system.registry)
    system.attach_metrics(MetricsRegistry())
    daemon = ServeDaemon(
        system, DaemonConfig(port=0, http_port=None, retry_after_ms=5)
    ).start()
    registry = MetricsRegistry() if traced else None
    client = DaemonClient("127.0.0.1", daemon.port, obs=registry)
    try:
        start = time.perf_counter()
        for index in range(THROUGHPUT_OPS):
            client.request("put", obj=f"obj{index % 8}", value=index)
        elapsed = time.perf_counter() - start
    finally:
        client.close()
        daemon.stop()
    return THROUGHPUT_OPS / elapsed if elapsed > 0 else 0.0


def _overhead() -> Dict[str, float]:
    _throughput(False)  # shared warm-up
    untraced = _throughput(False)
    traced = _throughput(True)
    return {
        "acked_per_s_untraced": untraced,
        "acked_per_s_traced": traced,
        "traced_over_untraced": traced / untraced if untraced else 0.0,
    }


@pytest.mark.benchmark(group="e16")
def test_e16_tracing_overhead(benchmark):
    result = once(benchmark, _overhead)

    table = Table(
        f"E16: tracing overhead at {THROUGHPUT_OPS} acked puts",
        ["client", "acked/s"],
    )
    table.add_row("untraced", f"{result['acked_per_s_untraced']:,.0f}")
    table.add_row("traced", f"{result['acked_per_s_traced']:,.0f}")
    table.add_row("traced/untraced",
                  f"{result['traced_over_untraced']:.2f}x")
    table.print()

    # Generous bar: one short socket lane is noisy, and the real cost
    # gate is the committed acked_per_s lanes in BENCH_e16.json.
    assert result["traced_over_untraced"] >= 0.5, (
        f"tracing halved client throughput "
        f"({result['traced_over_untraced']:.2f}x)"
    )

    _record("tracing_overhead", result)
