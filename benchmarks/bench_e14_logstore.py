"""E14 — the log-structured backend vs the in-place backends on the
paper's C3 cost metrics, plus what compaction costs.

Section 4's cost comparison charges the cache-manager path for the two
artifacts of in-place installs: *flush-transaction double writes*
(every object in an atomic flush set hits the device twice — log copy
then in-place write) and *identity writes* (the records injected to
dissolve multi-object flush dependencies).  The log-structured store
(:class:`~repro.storage.logstore.LogStructuredStableStore`) removes the
in-place granule entirely — a flush set is one batch frame under one
CRC — so both counters must read **zero** on that path.  E14 measures:

* **backend_costs** — one seeded multi-object workload driven through
  three configurations: the file backend under flush transactions, the
  file backend under identity writes (the paper's recommendation for
  in-place stores), and the logstore under batch installs
  (:func:`repro.storage.recommended_cache_config`).  The ``c3_*`` lanes
  land in ``BENCH_e14.json`` and are diffed by CI (lower is better);
  the zero claims are hard assertions.
* **compaction_sweep** — overwrite churn against the logstore at
  several ``compact_ratio`` settings: copies performed, bytes
  reclaimed, final footprint.  Aggressive compaction must bound the
  footprint; lazy compaction must copy less.

Results merge into ``BENCH_e14.json`` at the repo root (same pattern
as E11) so future PRs track the trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro import (
    CacheConfig,
    MultiObjectStrategy,
    Operation,
    OpKind,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.analysis import Table, format_bytes
from repro.storage import FlushTransaction, make_store
from repro.storage.logstore import LogStructuredStableStore
from repro.storage.registry import recommended_cache_config
from benchmarks.conftest import once, payload

#: Operations in the workload (CI smoke: E14_OPS=20).
OPS = int(os.environ.get("E14_OPS", "60"))
OBJECT_SIZE = 2 * 1024
#: Objects per multi-object operation — the paper's common k=2 case.
SET_SIZE = 2

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e14.json"

#: The three C3 configurations: (backend, cache-config factory).
LANES = {
    "file+flush-txn": (
        "file",
        lambda: CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=FlushTransaction(),
        ),
    ),
    "file+identity": ("file", CacheConfig),
    "logstore+batch": ("logstore", lambda: recommended_cache_config("logstore")),
}


def _record(section: str, payload_dict) -> None:
    """Merge one section into the BENCH_e14.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["operations"] = OPS
    data["object_size"] = OBJECT_SIZE
    data[section] = payload_dict
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _pair_op(step: int) -> Operation:
    objects = [f"o{(step + offset) % 6}" for offset in range(SET_SIZE)]
    return Operation(
        f"pair@{step}",
        OpKind.PHYSICAL,
        reads=set(),
        writes=set(objects),
        payload={obj: payload(f"{obj}@{step}", OBJECT_SIZE) for obj in objects},
    )


def _drive(lane: str, root: str) -> Dict[str, float]:
    backend, cache_factory = LANES[lane]
    store = make_store(backend, root)
    system = RecoverableSystem(
        SystemConfig(cache=cache_factory()), store=store
    )
    t0 = time.perf_counter()
    for step in range(OPS):
        system.execute(_pair_op(step))
        if step % 4 == 3:
            system.log.force()
            system.purge()
    system.log.force()
    system.flush_all()
    elapsed = time.perf_counter() - t0
    # Sanity: every lane must be crash-consistent.
    system.crash()
    system.recover()
    verify_recovered(system)
    snap = system.stats.snapshot()
    return {
        "c3_identity_writes": snap["identity_writes"],
        "c3_flush_double_writes": snap["flush_double_writes"],
        "c3_quiesce_events": snap["quiesce_events"],
        "object_writes": snap["object_writes"],
        "atomic_flushes": snap["atomic_flushes"],
        "log_value_bytes": snap["log_value_bytes"],
        "compactions": snap.get("compactions", 0),
        "compaction_copies": snap["compaction_copies"],
        "wall_s": elapsed,
    }


def _backend_costs(tmp_root: str) -> Dict[str, Dict[str, float]]:
    return {
        lane: _drive(lane, os.path.join(tmp_root, lane))
        for lane in LANES
    }


@pytest.mark.benchmark(group="e14")
def test_e14_backend_costs(benchmark, tmp_path):
    results = once(benchmark, _backend_costs, str(tmp_path))

    table = Table(
        f"E14: C3 cost metrics by backend ({OPS} k={SET_SIZE} ops, "
        f"{format_bytes(OBJECT_SIZE)} objects)",
        ["lane", "identity writes", "flush double writes", "quiesces",
         "device writes", "atomic flushes", "compaction copies", "wall s"],
    )
    for lane, row in results.items():
        table.add_row(
            lane,
            row["c3_identity_writes"],
            row["c3_flush_double_writes"],
            row["c3_quiesce_events"],
            row["object_writes"],
            row["atomic_flushes"],
            row["compaction_copies"],
            f"{row['wall_s']:.3f}",
        )
    table.print()

    txn = results["file+flush-txn"]
    ident = results["file+identity"]
    logstore = results["logstore+batch"]
    # The headline claim: nothing is written in place, so both in-place
    # cost artifacts are identically zero on the log-structured path.
    assert logstore["c3_identity_writes"] == 0
    assert logstore["c3_flush_double_writes"] == 0
    assert logstore["c3_quiesce_events"] == 0
    # ...while the flush-transaction lane pays double writes + quiesces
    # and the identity-write lane pays identity records — the two costs
    # the paper's C3 comparison trades between.
    assert txn["c3_flush_double_writes"] > 0
    assert txn["c3_quiesce_events"] > 0
    assert ident["c3_identity_writes"] > 0
    assert ident["c3_flush_double_writes"] == 0
    # The logstore still performs real atomic installs to do it.
    assert logstore["atomic_flushes"] > 0

    _record("backend_costs", results)


# ----------------------------------------------------------------------
# compaction-cost sweep
# ----------------------------------------------------------------------
COMPACT_RATIOS = (0.3, 0.5, 0.8)
#: Overwrite churn per ratio (CI smoke: E14_CHURN=200).
CHURN = int(os.environ.get("E14_CHURN", "600"))


def _churn(root: str, ratio: float) -> Dict[str, float]:
    store = LogStructuredStableStore(
        root,
        segment_bytes=8 * 1024,
        compact_ratio=ratio,
        compact_min_bytes=16 * 1024,
    )
    value = payload("churn", 512)
    t0 = time.perf_counter()
    for step in range(CHURN):
        store.write(f"obj:{step % 8}", value, step)
    elapsed = time.perf_counter() - t0
    live_bytes = 8 * len(value)
    return {
        "compactions": store.stats.extra.get("compactions", 0),
        "compaction_copies": store.stats.compaction_copies,
        "final_bytes": store.total_bytes(),
        "final_segments": store.segment_count(),
        "dead_ratio": store.dead_ratio(),
        "amplification": store.stats.compaction_copies / CHURN,
        "footprint_x_live": store.total_bytes() / live_bytes,
        "wall_s": elapsed,
    }


def _compaction_sweep(tmp_root: str) -> Dict[str, Dict[str, float]]:
    return {
        f"{ratio:g}": _churn(os.path.join(tmp_root, f"r{ratio:g}"), ratio)
        for ratio in COMPACT_RATIOS
    }


@pytest.mark.benchmark(group="e14")
def test_e14_compaction_sweep(benchmark, tmp_path):
    results = once(benchmark, _compaction_sweep, str(tmp_path))

    table = Table(
        f"E14: compaction cost vs reclamation ({CHURN} overwrites, "
        "8 live objects)",
        ["compact ratio", "compactions", "copies", "copy/write",
         "final bytes", "dead ratio", "wall s"],
    )
    for ratio, row in results.items():
        table.add_row(
            ratio,
            row["compactions"],
            row["compaction_copies"],
            f"{row['amplification']:.3f}",
            format_bytes(row["final_bytes"]),
            f"{row['dead_ratio']:.2f}",
            f"{row['wall_s']:.3f}",
        )
    table.print()

    rows = [results[f"{ratio:g}"] for ratio in COMPACT_RATIOS]
    # Every rung must actually compact under this much churn.
    for row in rows:
        assert row["compactions"] >= 1
    # Aggressive thresholds copy at least as much as lazy ones; lazy
    # thresholds never out-reclaim aggressive ones (monotone trade-off).
    assert rows[0]["compaction_copies"] >= rows[-1]["compaction_copies"]
    # The copy cost stays a small multiple of the write count: full
    # compaction copies only the 8 live versions per run.
    for row in rows:
        assert row["amplification"] < 1.0

    _record("compaction_sweep", results)
