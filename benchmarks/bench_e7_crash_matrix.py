"""E7 — Theorems 1-3, empirically: a crash matrix.

Random logical workloads are crashed at every operation index (with
random interleaved purges and forces driven by the same seed) and
recovered; the recovered state is compared against the oracle over the
durable history.  The matrix spans the four supported cache
configurations.  Expected: 100% success everywhere.

A fifth column runs the ``raw`` strawman (multi-object flushes with no
atomicity mechanism) against mid-flush crash injection and reports how
often the torn flush leaves an *unrecoverable* state — the paper's
motivation for the whole apparatus.
"""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro import (
    CacheConfig,
    CrashInjector,
    GraphMode,
    MultiObjectStrategy,
    RawMultiWrite,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.analysis import Table
from repro.kernel.crash import CrashNow
from repro.storage import FlushTransaction, ShadowInstall
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from benchmarks.conftest import once

CONFIGS = {
    "rW + identity": lambda: CacheConfig(),
    "rW + shadow": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=ShadowInstall(),
    ),
    "rW + flush-txn": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=FlushTransaction(),
    ),
    "W + shadow": lambda: CacheConfig(
        graph_mode=GraphMode.W,
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=ShadowInstall(),
    ),
    # The kitchen sink: tiny cache (constant eviction pressure) and
    # hot-object victim policy on top of identity writes.
    "rW + identity + cap4": lambda: _capacity_config(),
}


def _capacity_config() -> CacheConfig:
    from repro.cache.policies import PeelHottest

    return CacheConfig(capacity=4, victim_policy=PeelHottest())

OPERATIONS = 20
SEEDS = range(6)


def _one_run(make_config, seed: int, crash_at: int) -> bool:
    rng = random.Random(seed * 1000 + crash_at)
    system = RecoverableSystem(SystemConfig(cache=make_config()))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=5, operations=OPERATIONS, object_size=64, p_delete=0.1
        ),
        seed=seed,
    )
    for index, op in enumerate(workload.operations()):
        system.execute(op)
        if rng.random() < 0.4:
            system.log.force()
        if rng.random() < 0.3:
            system.purge()
        if index == crash_at:
            break
    system.crash()
    system.recover()
    try:
        verify_recovered(system)
        return True
    except AssertionError:
        return False


def _raw_torn_run(seed: int) -> bool:
    """Drive the raw strawman into a mid-flush crash; True = survived."""
    system = RecoverableSystem(
        SystemConfig(
            cache=CacheConfig(
                multi_object_strategy=MultiObjectStrategy.ATOMIC,
                mechanism=RawMultiWrite(),
            )
        )
    )
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=4,
            operations=OPERATIONS,
            object_size=64,
            w_combine=0.45,
            w_derive=0.3,
            w_touch=0.15,
            w_physical=0.1,
        ),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
    system.log.force()
    injector = CrashInjector(system)
    injector.arm_mid_flush_crash(after_writes=1)
    try:
        system.flush_all()
    except CrashNow:
        pass
    finally:
        injector.disarm()
    system.crash()
    system.recover()
    try:
        verify_recovered(system)
        return True
    except AssertionError:
        return False


def _matrix() -> Dict[str, Dict[str, int]]:
    out: Dict[str, Dict[str, int]] = {}
    for name, make_config in CONFIGS.items():
        runs = ok = 0
        for seed in SEEDS:
            for crash_at in range(0, OPERATIONS, 2):
                runs += 1
                ok += _one_run(make_config, seed, crash_at)
        out[name] = {"runs": runs, "ok": ok}
    torn_runs = torn_ok = 0
    for seed in range(24):
        torn_runs += 1
        torn_ok += _raw_torn_run(seed)
    out["raw (torn, strawman)"] = {"runs": torn_runs, "ok": torn_ok}
    return out


@pytest.mark.benchmark(group="e7")
def test_e7_crash_matrix(benchmark):
    results = once(benchmark, _matrix)

    table = Table(
        "E7: crash-recovery matrix (recovered == oracle)",
        ["configuration", "runs", "recovered", "success"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            row["runs"],
            row["ok"],
            f"{row['ok'] / row['runs']:.0%}",
        )
    table.print()

    for name in CONFIGS:
        assert results[name]["ok"] == results[name]["runs"], (
            f"{name} failed a crash-recovery run"
        )
    # The strawman must demonstrate actual failures, else the matrix
    # proves nothing about the mechanisms.
    raw = results["raw (torn, strawman)"]
    assert raw["ok"] < raw["runs"], "torn flushes never broke recovery?"
