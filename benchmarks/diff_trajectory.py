"""Diff two BENCH_e10.json trajectory files and fail on regressions.

CI runs the E10 smoke benchmark, then compares the fresh trajectory
against the committed one::

    python benchmarks/diff_trajectory.py BASELINE CURRENT [--threshold 0.2]

A *lane* is any dict in the trajectory that carries an ``ops_per_sec``
value, addressed by its dotted path (e.g.
``graph_maintenance.indexed.75% logical@1000``).  Lanes marked
``"extrapolated": true`` were never measured and are skipped.  Only
lanes present in **both** files are compared — the smoke run measures a
subset of the committed full-size lanes, and a brand-new lane has no
baseline yet, so both are reported but never fail the build.  A lane
whose throughput drops by more than the threshold (default 20%) fails
with exit status 1.

(The name deliberately avoids the ``bench_*``/``test_*`` patterns so
pytest does not collect this module.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_THRESHOLD = 0.20


def collect_lanes(data, prefix: str = "") -> Dict[str, float]:
    """All dotted-path -> ops_per_sec lanes, skipping extrapolated."""
    lanes: Dict[str, float] = {}
    if not isinstance(data, dict):
        return lanes
    rate = data.get("ops_per_sec")
    if isinstance(rate, (int, float)) and not data.get("extrapolated"):
        lanes[prefix or "."] = float(rate)
    for key, value in data.items():
        if isinstance(value, dict):
            path = f"{prefix}.{key}" if prefix else str(key)
            lanes.update(collect_lanes(value, path))
    return lanes


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Returns (report_lines, regression_lines)."""
    report: List[str] = []
    regressions: List[str] = []
    for lane in sorted(set(baseline) | set(current)):
        if lane not in current:
            report.append(f"  [gone]     {lane} (baseline only; not run)")
            continue
        if lane not in baseline:
            report.append(
                f"  [new]      {lane}: {current[lane]:,.0f} ops/s "
                "(no baseline; recorded)"
            )
            continue
        old, new = baseline[lane], current[lane]
        change = (new - old) / old if old else 0.0
        line = (
            f"{lane}: {old:,.0f} -> {new:,.0f} ops/s ({change:+.1%})"
        )
        if change < -threshold:
            report.append(f"  [REGRESS]  {line}")
            regressions.append(line)
        else:
            report.append(f"  [ok]       {line}")
    return report, regressions


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(
            os.environ.get("E10_DIFF_THRESHOLD", DEFAULT_THRESHOLD)
        ),
        help="maximum tolerated fractional ops/sec drop (default 0.20)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to diff")
        return 0
    baseline = collect_lanes(json.loads(args.baseline.read_text()))
    current = collect_lanes(json.loads(args.current.read_text()))

    report, regressions = compare(baseline, current, args.threshold)
    print(
        f"E10 trajectory diff ({len(baseline)} baseline lanes, "
        f"{len(current)} current, threshold {args.threshold:.0%}):"
    )
    for line in report:
        print(line)
    if regressions:
        print(
            f"\n{len(regressions)} lane(s) regressed more than "
            f"{args.threshold:.0%}:"
        )
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nno lane regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
