"""Diff two BENCH trajectory files and fail on regressions.

CI runs the E10/E11 smoke benchmarks, then compares each fresh
trajectory against the committed one::

    python benchmarks/diff_trajectory.py BASELINE CURRENT [--threshold 0.2]

A *lane* is a dict carrying an ``ops_per_sec`` value (higher is
better), any numeric ``acked_per_s*`` entry (higher is better — the
serving-throughput lanes E12/E13 record), any numeric
``seconds_per_*`` entry (lower is better — the recovery-attempt
wall-time lanes E11 records), any numeric ``c3_*`` entry (lower is
better — the storage cost counters E14 records; the log-structured
lanes pin several of these at zero), or any numeric ``lag_*`` entry
(lower is better — the witness redo-lag and failover-time lanes E15
records), or any numeric ``stage_ms_*`` entry (lower is better — the
per-stage latency-attribution lanes E16 records), addressed by its
dotted path
(e.g. ``graph_maintenance.indexed.75% logical@1000``,
``serving_throughput.acked_per_s``,
``recovery_telemetry.seconds_per_attempt`` or
``backend_costs.logstore+batch.c3_identity_writes``).  Lanes marked
``"extrapolated": true`` were never measured and are skipped.  Only
lanes present in **both** files are compared — the smoke run measures a
subset of the committed full-size lanes, and a brand-new lane has no
baseline yet, so both are reported but never fail the build.  A lane
that moves in its bad direction (throughput drop, wall-time rise) by
more than the threshold (default 20%) fails with exit status 1.

(The name deliberately avoids the ``bench_*``/``test_*`` patterns so
pytest does not collect this module.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_THRESHOLD = 0.20

#: A lane value: (measurement, higher_is_better).
Lane = Tuple[float, bool]


def collect_lanes(data, prefix: str = "") -> Dict[str, Lane]:
    """All dotted-path lanes, skipping extrapolated entries.

    ``ops_per_sec`` dicts yield higher-is-better lanes at the dict's
    own path; numeric ``acked_per_s*`` keys yield higher-is-better
    lanes and ``seconds_per_*`` / ``c3_*`` / ``lag_*`` keys
    lower-is-better lanes, all at ``<path>.<key>``.
    """
    lanes: Dict[str, Lane] = {}
    if not isinstance(data, dict):
        return lanes
    rate = data.get("ops_per_sec")
    if isinstance(rate, (int, float)) and not data.get("extrapolated"):
        lanes[prefix or "."] = (float(rate), True)
    for key, value in data.items():
        if isinstance(value, dict):
            path = f"{prefix}.{key}" if prefix else str(key)
            lanes.update(collect_lanes(value, path))
            continue
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or data.get("extrapolated")
        ):
            continue
        if str(key).startswith("acked_per_s"):
            path = f"{prefix}.{key}" if prefix else str(key)
            lanes[path] = (float(value), True)
        elif str(key).startswith(("seconds_per_", "c3_", "lag_",
                                  "stage_ms_")):
            path = f"{prefix}.{key}" if prefix else str(key)
            lanes[path] = (float(value), False)
    return lanes


def _as_lane(value) -> Lane:
    """Normalize a legacy bare float (old callers) to a lane tuple."""
    if isinstance(value, tuple):
        return value
    return (float(value), True)


def _fmt(value: float, higher_better: bool) -> str:
    return f"{value:,.0f} ops/s" if higher_better else f"{value:.4g} s"


def compare(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Returns (report_lines, regression_lines)."""
    report: List[str] = []
    regressions: List[str] = []
    for lane in sorted(set(baseline) | set(current)):
        if lane not in current:
            report.append(f"  [gone]     {lane} (baseline only; not run)")
            continue
        new, higher_better = _as_lane(current[lane])
        if lane not in baseline:
            report.append(
                f"  [new]      {lane}: {_fmt(new, higher_better)} "
                "(no baseline; recorded)"
            )
            continue
        old, _ = _as_lane(baseline[lane])
        if old:
            change = (new - old) / old
        else:
            # A zero baseline is a pinned claim for lower-is-better
            # lanes (the E14 zero-cost counters): any rise regresses.
            change = float("inf") if new > 0 else 0.0
        line = (
            f"{lane}: {_fmt(old, higher_better)} -> "
            f"{_fmt(new, higher_better)} ({change:+.1%})"
        )
        bad = change < -threshold if higher_better else change > threshold
        if bad:
            report.append(f"  [REGRESS]  {line}")
            regressions.append(line)
        else:
            report.append(f"  [ok]       {line}")
    return report, regressions


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(
            os.environ.get("E10_DIFF_THRESHOLD", DEFAULT_THRESHOLD)
        ),
        help="maximum tolerated fractional move in a lane's bad "
        "direction (default 0.20)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to diff")
        return 0
    baseline = collect_lanes(json.loads(args.baseline.read_text()))
    current = collect_lanes(json.loads(args.current.read_text()))

    report, regressions = compare(baseline, current, args.threshold)
    print(
        f"trajectory diff ({len(baseline)} baseline lanes, "
        f"{len(current)} current, threshold {args.threshold:.0%}):"
    )
    for line in report:
        print(line)
    if regressions:
        print(
            f"\n{len(regressions)} lane(s) regressed more than "
            f"{args.threshold:.0%}:"
        )
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nno lane regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
