"""E5 — Section 4 "Comparing Costs": installing a size-k atomic flush
set via flush transactions, shadow paging, or cache-manager identity
writes.

A single logical operation writes k objects (forcing a k-object flush
set); we then drain the cache under each strategy and account the cost:

* flush transaction — every object written twice (log + in place), one
  log force, one quiesce;
* shadow paging — every object written to a shadow plus a pointer
  swing; no quiesce but placement churn;
* identity writes — k-1 objects logged once (the identity records),
  every object eventually written in place once, no quiesce, no
  multi-object atomic flush at all.

The paper's claim for the common k=2 case: flush transactions log two
object values, identity writes log one — "where saving one I/O is
important" — and identity writes never quiesce the system.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro import (
    CacheConfig,
    MultiObjectStrategy,
    Operation,
    OpKind,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.analysis import Table, format_bytes
from repro.storage import FlushTransaction, ShadowInstall
from benchmarks.conftest import once, payload

OBJECT_SIZE = 8 * 1024
SET_SIZES = [2, 4, 8, 16]

STRATEGIES = {
    "flush-txn": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=FlushTransaction(),
    ),
    "shadow": lambda: CacheConfig(
        multi_object_strategy=MultiObjectStrategy.ATOMIC,
        mechanism=ShadowInstall(),
    ),
    "identity-writes": lambda: CacheConfig(),
}


def _k_object_op(k: int) -> Operation:
    objects = [f"o{i}" for i in range(k)]
    return Operation(
        f"write{k}",
        OpKind.PHYSICAL,
        reads=set(),
        writes=set(objects),
        payload={obj: payload(obj, OBJECT_SIZE) for obj in objects},
    )


def _install_cost(strategy_name: str, k: int) -> Dict[str, int]:
    system = RecoverableSystem(
        SystemConfig(cache=STRATEGIES[strategy_name]())
    )
    system.execute(_k_object_op(k))
    system.log.force()
    before = system.stats.snapshot()
    system.flush_all()
    delta = system.stats.diff(before)
    # Sanity: the install must be crash-consistent.
    system.crash()
    system.recover()
    verify_recovered(system)
    return delta


def _sweep() -> Dict[int, Dict[str, Dict[str, int]]]:
    return {
        k: {name: _install_cost(name, k) for name in STRATEGIES}
        for k in SET_SIZES
    }


@pytest.mark.benchmark(group="e5")
def test_e5_atomic_flush_costs(benchmark):
    results = once(benchmark, _sweep)

    table = Table(
        f"E5 (Section 4): installing a k-object flush set "
        f"({format_bytes(OBJECT_SIZE)} objects)",
        ["k", "strategy", "device writes", "logged value bytes",
         "log forces", "quiesces", "atomic flushes"],
    )
    for k, per_strategy in results.items():
        for name, delta in per_strategy.items():
            device = (
                delta["object_writes"]
                + delta["shadow_writes"]
                + delta["pointer_swings"]
            )
            table.add_row(
                k,
                name,
                device,
                format_bytes(delta["log_value_bytes"]),
                delta["log_forces"],
                delta["quiesce_events"],
                delta["atomic_flushes"],
            )
    table.print()

    for k in SET_SIZES:
        txn = results[k]["flush-txn"]
        shadow = results[k]["shadow"]
        ident = results[k]["identity-writes"]
        # Flush txn: k log values + k in-place writes.
        assert txn["log_value_bytes"] >= k * OBJECT_SIZE
        assert txn["quiesce_events"] == 1
        # Identity writes: k-1 logged values, zero quiesce, zero
        # multi-object atomic flushes.
        assert ident["log_value_bytes"] == (k - 1) * OBJECT_SIZE
        assert ident["quiesce_events"] == 0
        assert ident["atomic_flushes"] == 0
        # Shadow: extra device writes (shadows + pointer swing).
        shadow_device = (
            shadow["object_writes"]
            + shadow["shadow_writes"]
            + shadow["pointer_swings"]
        )
        ident_device = ident["object_writes"]
        assert ident_device < shadow_device

    # The paper's headline k=2 comparison: one logged value instead of two.
    assert (
        results[2]["identity-writes"]["log_value_bytes"]
        == results[2]["flush-txn"]["log_value_bytes"] // 2
    )


def _total_bytes(delta: Dict[str, int], object_size: int) -> int:
    """All bytes moved to durable media for one install: in-place and
    shadow object writes plus everything appended to the log."""
    device_objects = delta["object_writes"] + delta["shadow_writes"]
    return (
        device_objects * object_size
        + delta["pointer_swings"] * 512  # one small pointer block
        + delta["log_bytes"]
    )


def _size_sweep() -> Dict[int, Dict[str, int]]:
    out: Dict[int, Dict[str, int]] = {}
    for size in (512, 4 * 1024, 64 * 1024):
        per = {}
        for name in STRATEGIES:
            system = RecoverableSystem(
                SystemConfig(cache=STRATEGIES[name]())
            )
            objects = ["a", "b"]
            op = Operation(
                "pair",
                OpKind.PHYSICAL,
                reads=set(),
                writes=set(objects),
                payload={obj: payload(obj, size) for obj in objects},
            )
            system.execute(op)
            system.log.force()
            before = system.stats.snapshot()
            system.flush_all()
            per[name] = _total_bytes(system.stats.diff(before), size)
        out[size] = per
    return out


@pytest.mark.benchmark(group="e5")
def test_e5_total_bytes_by_object_size(benchmark):
    """The honest trade-off view: identity writes log k-1 object values
    (which *grows with object size*), shadow paging logs nothing but
    moves every object through a shadow plus a pointer block.  Total
    durable-media bytes for a k=2 install, by object size — showing
    where each mechanism's overhead dominates, while only identity
    writes avoid both the quiesce and the multi-object atomic flush."""
    results = once(benchmark, _size_sweep)
    table = Table(
        "E5b: total durable-media bytes to install a 2-object flush set",
        ["object size", "flush-txn", "shadow", "identity-writes"],
    )
    for size, per in results.items():
        table.add_row(
            format_bytes(size),
            format_bytes(per["flush-txn"]),
            format_bytes(per["shadow"]),
            format_bytes(per["identity-writes"]),
        )
    table.print()

    for size, per in results.items():
        # Identity writes always move fewer bytes than flush txns
        # (k-1 logged values vs k, same in-place writes)...
        assert per["identity-writes"] < per["flush-txn"]
        # ...while shadow's byte count is lowest at large sizes — the
        # cost it pays instead (placement churn, the quiesce-free but
        # atomic multi-write machinery) is not a byte count.
    assert results[64 * 1024]["shadow"] < results[64 * 1024]["identity-writes"]
