"""E8 — ablations of the design choices DESIGN.md calls out.

(a) **WAL force bound at installation** — with `wal_force_notx_writers`
    the install of a node with unexposed objects forces the log through
    the blind writers justifying Notx(n).  Because the log forces in
    strict lSI order, the flag turns out to be *redundant for
    correctness* (an installation record can only become durable
    together with the blind-writer records it references); the ablation
    measures its only real effect, earlier/larger log forces, and
    verifies recoverability both ways.

(b) **Installation logging** — without installation records the
    analysis pass cannot advance rSIs; recovery re-scans and re-executes
    operations whose effects were installed without flushing.

(c) **Cycle pressure, W vs rW** — how often each graph is forced to
    merge nodes (W: writeset-overlap coalescing + SCC collapse; rW:
    SCC collapse only), and how many identity writes the cache manager
    injects to dissolve what remains.

(d) **Write-write edge policy** — the repeat-history strategy (the
    paper's choice) versus conservative write-write installation edges:
    edge counts and the resulting W-node sizes.
"""

from __future__ import annotations

import random
from statistics import mean
from typing import Dict

import pytest

from repro import (
    CacheConfig,
    GeneralizedRedoTest,
    RecoverableSystem,
    SystemConfig,
    verify_recovered,
)
from repro.analysis import Table
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph, WriteWritePolicy
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.core.write_graph import BatchWriteGraph
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
    transient_files_workload,
)
from benchmarks.conftest import once

HEAVY_MIX = dict(w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3)


def _driven_system(cache: CacheConfig, seed: int) -> Dict[str, int]:
    rng = random.Random(seed)
    system = RecoverableSystem(SystemConfig(cache=cache))
    register_workload_functions(system.registry)
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=6, operations=60, object_size=64, **HEAVY_MIX
        ),
        seed=seed,
    )
    for op in workload.operations():
        system.execute(op)
        if rng.random() < 0.3:
            system.purge()
    system.flush_all()
    system.crash()
    system.recover()
    verify_recovered(system)
    return system.stats.snapshot()


def _ablation_wal_force() -> Dict[str, Dict[str, float]]:
    out = {}
    for label, flag in (("on (default)", True), ("off", False)):
        snaps = [
            _driven_system(CacheConfig(wal_force_notx_writers=flag), seed)
            for seed in range(4)
        ]
        out[label] = {
            "log_forces": mean(s["log_forces"] for s in snaps),
            "flushes": mean(s["flushes"] for s in snaps),
        }
    return out


def _ablation_install_logging() -> Dict[str, Dict[str, int]]:
    out = {}
    for label, flag in (("on (paper)", True), ("off", False)):
        system = RecoverableSystem(
            SystemConfig(
                cache=CacheConfig(log_installations=flag),
                redo_test=GeneralizedRedoTest(),
            )
        )
        transient_files_workload(system, files=16, object_size=2048)
        system.flush_all()
        system.log.force()
        system.crash()
        report = system.recover()
        verify_recovered(system)
        out[label] = {
            "scanned": report.records_scanned,
            "redone": report.ops_redone,
        }
    return out


def _ablation_cycles() -> Dict[str, float]:
    rw_collapses = []
    w_nontrivial = []
    identity_writes = []
    for seed in range(5):
        workload = LogicalWorkload(
            LogicalWorkloadConfig(
                objects=8, operations=100, object_size=48, **HEAVY_MIX
            ),
            seed=seed,
        )
        history = History()
        ops = []
        for op in workload.operations():
            history.append(op)
            op.lsi = op.op_id + 1
            ops.append(op)
        rw = RefinedWriteGraph()
        for op in ops:
            rw.add_operation(op)
        rw_collapses.append(rw.cycle_collapses)
        # W: count operations forced into shared nodes beyond their own.
        w = BatchWriteGraph(InstallationGraph(ops))
        w_nontrivial.append(
            sum(1 for node in w.nodes if len(node.ops) > 1)
        )
        # Identity writes injected when actually draining a CM.
        stats = _driven_system(CacheConfig(), seed)
        identity_writes.append(stats["identity_writes"])
    return {
        "rw_cycle_collapses": mean(rw_collapses),
        "w_merged_nodes": mean(w_nontrivial),
        "identity_writes_per_run": mean(identity_writes),
    }


def _ablation_ww_policy() -> Dict[str, Dict[str, float]]:
    out = {}
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=8, operations=100, object_size=48, **HEAVY_MIX
        ),
        seed=11,
    )
    history = History()
    ops = []
    for op in workload.operations():
        history.append(op)
        op.lsi = op.op_id + 1
        ops.append(op)
    for policy in WriteWritePolicy:
        graph = InstallationGraph(ops, policy)
        edges = sum(1 for _ in graph.edges())
        w = BatchWriteGraph(graph)
        out[policy.value] = {
            "installation_edges": edges,
            "w_nodes": len(w.nodes),
            "w_max_vars": max(len(n.vars) for n in w.nodes),
        }
    return out


def _ablation_victim_policy() -> Dict[str, Dict[str, int]]:
    """Hot/cold skew: one hot object repeatedly co-written with cold
    ones.  The hot-object victim policy should peel (log) the hot
    object and flush cold ones, so the hot object is flushed rarely
    while its updates accumulate in cache — the paper's Section 4
    "hot objects" remark."""
    from repro.cache.policies import PeelFirstSorted, PeelHottest
    from repro.core.operation import Operation, OpKind

    # Each round updates the hot object in place (exposed: it reads its
    # own prior value) and emits one cold object derived from it, so
    # the pair {hot, cold_i} lands in one flush set every round.  The
    # hot object's name sorts *last*: the naive policy peels the colds
    # and keeps flushing the hot object; the paper's policy peels the
    # hot object (logging its value once) and flushes a cold one.
    def hot_step(reads, cold):
        prior = reads["zzz-hot"] or b""
        return {"zzz-hot": (prior + b"H")[-64:], cold: b"C" * 64}

    out = {}
    for label, policy in (
        ("sorted (naive)", PeelFirstSorted()),
        ("peel-hottest (paper)", PeelHottest()),
    ):
        # A tiny cache creates the pressure: capacity enforcement
        # installs and evicts the minimum necessary each round, and the
        # victim policy decides whether the hot object is what gets
        # flushed+evicted or what stays dirty in cache.
        system = RecoverableSystem(
            SystemConfig(
                cache=CacheConfig(victim_policy=policy, capacity=2)
            )
        )
        tracer = system.attach_tracer()
        system.registry.register("hot_step", hot_step)
        for round_index in range(12):
            cold = f"cold{round_index}"
            system.execute(
                Operation(
                    f"hotstep({cold})",
                    OpKind.LOGICAL,
                    reads={"zzz-hot"},
                    writes={"zzz-hot", cold},
                    fn="hot_step",
                    params=(cold,),
                )
            )
            system.read("zzz-hot")  # keep it hot
        system.log.force()
        system.crash()
        system.recover()
        verify_recovered(system)
        hot_flushes = sum(
            1
            for event in tracer.of_kind("install")
            if "zzz-hot" in event.get("vars", ())
        )
        snapshot = system.stats.snapshot()
        out[label] = {
            "hot object flushes": hot_flushes,
            "identity writes": snapshot["identity_writes"],
            "stable reads": snapshot["object_reads"],
        }
    return out


def _run_all():
    return {
        "wal_force": _ablation_wal_force(),
        "install_logging": _ablation_install_logging(),
        "cycles": _ablation_cycles(),
        "ww_policy": _ablation_ww_policy(),
        "victim_policy": _ablation_victim_policy(),
    }


@pytest.mark.benchmark(group="e8")
def test_e8_ablations(benchmark):
    results = once(benchmark, _run_all)

    table_a = Table(
        "E8a: WAL force bound at installation (both recover correctly)",
        ["wal_force_notx_writers", "mean log forces", "mean installs"],
    )
    for label, row in results["wal_force"].items():
        table_a.add_row(label, f"{row['log_forces']:.1f}", f"{row['flushes']:.1f}")
    table_a.print()

    table_b = Table(
        "E8b: installation logging (transient-file workload)",
        ["installation records", "records scanned", "ops redone"],
    )
    for label, row in results["install_logging"].items():
        table_b.add_row(label, row["scanned"], row["redone"])
    table_b.print()

    cycles = results["cycles"]
    table_c = Table(
        "E8c: cycle pressure and identity-write injections (mean/run)",
        ["metric", "value"],
    )
    table_c.add_row("rW cycle collapses", f"{cycles['rw_cycle_collapses']:.1f}")
    table_c.add_row("W multi-op (merged) nodes", f"{cycles['w_merged_nodes']:.1f}")
    table_c.add_row(
        "identity writes injected", f"{cycles['identity_writes_per_run']:.1f}"
    )
    table_c.print()

    table_d = Table(
        "E8d: write-write installation-edge policy",
        ["policy", "installation edges", "W nodes", "W max |vars|"],
    )
    for label, row in results["ww_policy"].items():
        table_d.add_row(
            label, row["installation_edges"], row["w_nodes"],
            row["w_max_vars"],
        )
    table_d.print()

    table_e = Table(
        "E8e: identity-write victim policy under hot/cold skew "
        "(12 rounds, 1 hot object, cache capacity 2)",
        ["victim policy", "hot-object flushes", "identity writes",
         "stable reads"],
    )
    for label, row in results["victim_policy"].items():
        table_e.add_row(
            label, row["hot object flushes"], row["identity writes"],
            row["stable reads"],
        )
    table_e.print()

    # (a) both settings recovered (verified inside); the flag only
    # affects force timing, not counts of installs.
    on = results["wal_force"]["on (default)"]
    off = results["wal_force"]["off"]
    assert on["flushes"] == off["flushes"]

    # (b) without installation records, recovery rescans and re-runs.
    with_records = results["install_logging"]["on (paper)"]
    without = results["install_logging"]["off"]
    assert with_records["redone"] == 0
    assert without["redone"] > 0

    # (d) the repeat-history strategy never has more edges than the
    # conservative policy.
    repeat = results["ww_policy"][WriteWritePolicy.REPEAT_HISTORY.value]
    conservative = results["ww_policy"][WriteWritePolicy.CONSERVATIVE.value]
    assert (
        repeat["installation_edges"] <= conservative["installation_edges"]
    )

    # (e) the hot-object policy flushes the hot object less often.
    naive = results["victim_policy"]["sorted (naive)"]
    hot = results["victim_policy"]["peel-hottest (paper)"]
    assert hot["hot object flushes"] < naive["hot object flushes"]
