"""E12 — live fire: exactly-once visibility through a serving daemon.

E9/E11 tortured the kernel through its Python API.  E12 tortures the
whole *operable* stack: real clients over real sockets against the
serving daemon, fault-injected storage underneath, the daemon
SIGKILL-simulated at a seeded moment mid-workload, supervised recovery,
then an audit of the one claim operators actually rely on — **every
write the daemon acknowledged is visible after recovery, exactly once**
(at or past its acked lSI, with the acked value when the lSI matches,
and never a value no client sent):

* **live-fire campaign** — ``E12_RUNS`` seeded in-process runs (CI
  smoke: ``E12_RUNS=25``), each with concurrent clients, fuzzed
  transient/torn/corrupt faults, a seeded kill point, and a full
  post-recovery audit; expected zero acked-write losses, with the
  watchdog's restarts and the fault ledger reported;
* **subprocess lanes** — the same contract against a real
  ``python -m repro serve`` process: one SIGKILL run (abrupt death,
  restart, ``/healthz`` goes green, audit) and one SIGTERM run (the
  drain must exit 0 and lose nothing);
* **clean-path throughput** — acked writes/second through the daemon
  with no faults armed, so the serving overhead has a number and a
  trajectory.

Results are appended to ``BENCH_e12.json`` at the repo root so future
PRs can track the trajectory.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.analysis import Table
from repro.kernel.system import RecoverableSystem
from repro.obs import MetricsRegistry
from repro.serve import (
    DaemonClient,
    DaemonConfig,
    LiveFireConfig,
    LiveFireHarness,
    RetryPolicy,
    ServeDaemon,
)
from repro.workloads import register_workload_functions
from benchmarks.conftest import once

#: Seeded live-fire runs in the campaign (CI smoke: E12_RUNS=25).
RUNS = int(os.environ.get("E12_RUNS", "200"))
#: Clean-path throughput sample size.
THROUGHPUT_OPS = int(os.environ.get("E12_THROUGHPUT_OPS", "400"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e12.json"


def _record(section: str, payload) -> None:
    """Merge one section into the BENCH_e12.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["runs"] = RUNS
    data[section] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# lane 1: the in-process live-fire campaign
# ----------------------------------------------------------------------
def _campaign() -> Dict:
    registry = MetricsRegistry()
    harness = LiveFireHarness(LiveFireConfig(), metrics=registry)
    t0 = time.perf_counter()
    report = harness.campaign(RUNS, seed=0)
    elapsed = time.perf_counter() - t0
    acked = report.total_acked
    return {
        "runs": len(report.outcomes),
        "failed": len(report.failures()),
        "acked_writes": acked,
        "acked_losses": report.total_losses,
        "sent": sum(o.sent for o in report.outcomes),
        "restarts": sum(o.restarts for o in report.outcomes),
        "faults_injected": sum(o.faults_injected for o in report.outcomes),
        "acked_per_s": acked / elapsed if elapsed > 0 else 0.0,
        "wall_s": elapsed,
        "_report": report,
    }


@pytest.mark.benchmark(group="e12")
def test_e12_live_fire_campaign(benchmark):
    result = once(benchmark, _campaign)
    report = result.pop("_report")

    table = Table(
        f"E12: live-fire campaign ({RUNS} seeded kill-and-audit runs)",
        ["metric", "value"],
    )
    for key in (
        "runs", "failed", "acked_writes", "acked_losses", "sent",
        "restarts", "faults_injected", "acked_per_s", "wall_s",
    ):
        value = result[key]
        table.add_row(
            key, f"{value:.2f}" if isinstance(value, float) else value
        )
    table.print()

    assert report.ok, report.summary() + "; " + "; ".join(
        f"{o.description}: {o.error or o.losses}" for o in report.failures()
    )
    # The headline claim: many acked writes, zero lost after recovery.
    assert result["acked_writes"] > 0
    assert result["acked_losses"] == 0
    # The campaign must actually be live fire, not a calm-weather walk:
    # faults were injected and at least one run crashed serving hard
    # enough that the watchdog restarted recovery.
    assert result["faults_injected"] > 0
    assert result["restarts"] > 0

    _record("live_fire", result)


# ----------------------------------------------------------------------
# lane 2: the subprocess lanes (a real daemon process)
# ----------------------------------------------------------------------
def _subprocess_lanes() -> Dict[str, Dict]:
    harness = LiveFireHarness(
        LiveFireConfig(clients=2, requests_per_client=10)
    )
    out: Dict[str, Dict] = {}
    for label, graceful, fault_seed in (
        ("sigkill", False, 3), ("sigterm", True, None),
    ):
        with tempfile.TemporaryDirectory(prefix=f"e12-{label}-") as workdir:
            t0 = time.perf_counter()
            outcome = harness.subprocess_run(
                workdir, seed=1, graceful=graceful, fault_seed=fault_seed
            )
            out[label] = {
                "ok": outcome.ok,
                "error": outcome.error,
                "acked_writes": outcome.acked,
                "acked_losses": len(outcome.losses),
                "wall_s": time.perf_counter() - t0,
            }
    return out


@pytest.mark.benchmark(group="e12")
def test_e12_subprocess_lanes(benchmark):
    results = once(benchmark, _subprocess_lanes)

    table = Table(
        "E12: real-process lanes (SIGKILL + restart, SIGTERM drain)",
        ["lane", "ok", "acked", "losses", "wall s"],
    )
    for label, row in results.items():
        table.add_row(
            label, row["ok"], row["acked_writes"], row["acked_losses"],
            f"{row['wall_s']:.2f}",
        )
    table.print()

    for label, row in results.items():
        assert row["ok"], f"{label}: {row['error']}"
        assert row["acked_writes"] > 0
        assert row["acked_losses"] == 0

    _record("subprocess_lanes", results)


# ----------------------------------------------------------------------
# lane 3: clean-path serving throughput
# ----------------------------------------------------------------------
def _throughput() -> Dict:
    system = RecoverableSystem()
    register_workload_functions(system.registry)
    daemon = ServeDaemon(
        system, DaemonConfig(port=0, http_port=None)
    ).start()
    try:
        client = DaemonClient(
            "127.0.0.1", daemon.port, policy=RetryPolicy(attempts=2)
        )
        payload = b"x" * 64
        t0 = time.perf_counter()
        for index in range(THROUGHPUT_OPS):
            client.put(f"tp:{index % 16}", payload)
        elapsed = time.perf_counter() - t0
        client.close()
        status = daemon.stop(graceful=True)
    finally:
        daemon.stop(graceful=False)
    return {
        "ops": THROUGHPUT_OPS,
        "acked_per_s": THROUGHPUT_OPS / elapsed if elapsed > 0 else 0.0,
        "shutdown_status": status,
        "wall_s": elapsed,
    }


@pytest.mark.benchmark(group="e12")
def test_e12_serving_throughput(benchmark):
    result = once(benchmark, _throughput)

    table = Table(
        f"E12: clean-path daemon throughput ({THROUGHPUT_OPS} forced puts)",
        ["metric", "value"],
    )
    for key, value in result.items():
        table.add_row(
            key, f"{value:.2f}" if isinstance(value, float) else value
        )
    table.print()

    assert result["shutdown_status"] == 0
    # Loopback round trip + WAL force per op: anything under 100/s
    # would mean the serving layer grew a pathological stall.
    assert result["acked_per_s"] > 100

    _record("serving_throughput", result)
