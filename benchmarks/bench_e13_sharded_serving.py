"""E13 — sharded serving: aggregate throughput vs shard count.

The sharded daemon's performance claim is architectural: each shard
owns its own WAL stream, so N single-shard writes force N devices
concurrently — the force latency, not a shared log, is the serial
resource.  On this container (1 CPU core) real fsync parallelism can't
be shown honestly with threads, so the scaling lane runs every shard
on a :class:`~repro.wal.latency.LatencyLog` — a WAL whose stable write
sleeps a modeled device force latency (default 1.5 ms, GIL-releasing).
The daemon, sockets, admission, fence protocol and force-before-ack
path are all real; only the device wait is modeled, which is exactly
the component per-shard WALs exist to overlap.

Lanes (recorded in ``BENCH_e13.json``):

* **sharded_scaling** — aggregate acked puts/second at 1/2/4/8 shards
  under a fixed 8-client offered load, 0% cross-shard.  Acceptance:
  1→4 shards scales by at least ``E13_MIN_SPEEDUP`` (default 2.5x);
* **cross_shard_ratio** — 4 shards with 0%/5%/25% of requests made
  cross-shard (fence protocol: every participant forces before the
  ack), showing what coordination costs as the ratio grows;
* **inmemory_reference** — the same ladder on the plain in-memory WAL
  (no modeled latency), recorded for context only: on a 1-core host
  its scaling is GIL-bound and flat, which is the honest contrast.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.analysis import Table
from repro.common.rng import make_rng
from repro.serve import DaemonClient, RetryPolicy
from repro.serve.sharded import ShardedDaemonConfig, ShardedServeDaemon
from repro.shard import ShardedSystem
from repro.wal.latency import LatencyLog
from repro.workloads import register_workload_functions
from benchmarks.conftest import once

#: Put requests per client thread per configuration.
OPS = int(os.environ.get("E13_OPS", "80"))
#: Fixed offered load: client threads, regardless of shard count.
CLIENTS = int(os.environ.get("E13_CLIENTS", "8"))
#: Modeled device force latency for the scaling lanes (milliseconds).
FORCE_LATENCY_MS = float(os.environ.get("E13_FORCE_LATENCY_MS", "1.5"))
#: Required aggregate speedup from 1 shard to 4 shards at 0% cross.
MIN_SPEEDUP = float(os.environ.get("E13_MIN_SPEEDUP", "2.5"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e13.json"


def _record(section: str, payload) -> None:
    """Merge one section into the BENCH_e13.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["ops_per_client"] = OPS
    data["clients"] = CLIENTS
    data["force_latency_ms"] = FORCE_LATENCY_MS
    data[section] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# workload plumbing
# ----------------------------------------------------------------------
def _keys_by_shard(shards: int, per_shard: int) -> Dict[int, List[str]]:
    """Probe key names until every shard owns ``per_shard`` keys."""
    sharded_keys: Dict[int, List[str]] = {s: [] for s in range(shards)}
    from repro.shard import ShardRouter

    router = ShardRouter(shards)
    probe = 0
    while any(len(keys) < per_shard for keys in sharded_keys.values()):
        key = f"e13:{probe}"
        probe += 1
        owner = router.shard_of(key)
        if len(sharded_keys[owner]) < per_shard:
            sharded_keys[owner].append(key)
        if probe > 100_000:  # pragma: no cover - crc32 is uniform
            raise AssertionError("key probing did not converge")
    return sharded_keys


def _run_load(
    shards: int,
    cross_ratio: float = 0.0,
    modeled_latency: bool = True,
) -> Dict:
    """Drive CLIENTS threads at an S-shard daemon; return the rates."""
    log_factory = None
    if modeled_latency:
        log_factory = lambda index: LatencyLog(  # noqa: E731
            force_latency_s=FORCE_LATENCY_MS / 1000.0
        )
    sharded = ShardedSystem.build(shards, log_factory=log_factory)
    register_workload_functions(sharded.registry)
    daemon = ShardedServeDaemon(
        sharded,
        ShardedDaemonConfig(port=0, http_port=None, max_queue=256),
    ).start()
    keys = _keys_by_shard(shards, max(2, CLIENTS))
    payload = b"x" * 64
    acked = [0] * CLIENTS
    cross_acked = [0] * CLIENTS
    errors: List[str] = []

    def worker(cid: int) -> None:
        # Each client is pinned to one shard's keys: the 0% lane is
        # exactly N independent single-shard streams.
        home = cid % shards
        my_keys = keys[home]
        other = (home + 1) % shards
        rng = make_rng(f"e13:{shards}:{cross_ratio}:{cid}")
        client = DaemonClient(
            "127.0.0.1",
            daemon.port,
            policy=RetryPolicy(attempts=6, base_delay=0.001, deadline=30.0),
        )
        try:
            for index in range(OPS):
                if cross_ratio > 0.0 and rng.random() < cross_ratio:
                    src = my_keys[index % len(my_keys)]
                    dst = keys[other][cid % len(keys[other])]
                    client.apply(
                        "wl_derive",
                        reads=[src],
                        writes=[dst],
                        params=[src, dst],
                        name=f"e13x:{cid}:{index}",
                    )
                    cross_acked[cid] += 1
                else:
                    client.put(
                        my_keys[index % len(my_keys)], payload
                    )
                acked[cid] += 1
        except Exception as exc:  # noqa: BLE001 - recorded, fails the lane
            errors.append(f"client {cid}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(cid,), daemon=True)
        for cid in range(CLIENTS)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    daemon.stop(graceful=True)
    total = sum(acked)
    if errors:
        raise AssertionError("; ".join(errors[:3]))
    return {
        "shards": shards,
        "cross_ratio": cross_ratio,
        "acked": total,
        "cross_acked": sum(cross_acked),
        "acked_per_s": total / elapsed if elapsed > 0 else 0.0,
        "wall_s": elapsed,
    }


# ----------------------------------------------------------------------
# lane 1: aggregate throughput vs shard count (0% cross-shard)
# ----------------------------------------------------------------------
def _scaling() -> Dict:
    out: Dict[str, Dict] = {}
    for shards in (1, 2, 4, 8):
        out[str(shards)] = _run_load(shards)
    base = out["1"]["acked_per_s"]
    return {
        "configs": out,
        "acked_per_s_1": out["1"]["acked_per_s"],
        "acked_per_s_2": out["2"]["acked_per_s"],
        "acked_per_s_4": out["4"]["acked_per_s"],
        "acked_per_s_8": out["8"]["acked_per_s"],
        "speedup_1_to_4": out["4"]["acked_per_s"] / base if base else 0.0,
        "speedup_1_to_8": out["8"]["acked_per_s"] / base if base else 0.0,
    }


@pytest.mark.benchmark(group="e13")
def test_e13_sharded_scaling(benchmark):
    result = once(benchmark, _scaling)

    table = Table(
        f"E13: aggregate acked puts/s vs shard count "
        f"({CLIENTS} clients x {OPS} ops, "
        f"{FORCE_LATENCY_MS} ms modeled force)",
        ["shards", "acked", "acked/s", "wall s"],
    )
    for shards, row in result["configs"].items():
        table.add_row(
            shards, row["acked"], f"{row['acked_per_s']:.0f}",
            f"{row['wall_s']:.2f}",
        )
    table.print()
    print(
        f"speedup 1->4 shards: {result['speedup_1_to_4']:.2f}x "
        f"(floor {MIN_SPEEDUP}x); 1->8: {result['speedup_1_to_8']:.2f}x"
    )

    # The tentpole acceptance bar: per-shard WALs must buy real
    # aggregate scaling when the workload is shard-local.
    assert result["speedup_1_to_4"] >= MIN_SPEEDUP, (
        f"1->4 shard speedup {result['speedup_1_to_4']:.2f}x is below "
        f"the {MIN_SPEEDUP}x floor"
    )

    _record("sharded_scaling", result)


# ----------------------------------------------------------------------
# lane 2: what cross-shard coordination costs
# ----------------------------------------------------------------------
def _cross_ratio() -> Dict:
    out: Dict[str, Dict] = {}
    for ratio in (0.0, 0.05, 0.25):
        out[f"{ratio:.2f}"] = _run_load(4, cross_ratio=ratio)
    return out


@pytest.mark.benchmark(group="e13")
def test_e13_cross_shard_ratio(benchmark):
    results = once(benchmark, _cross_ratio)

    table = Table(
        "E13: 4-shard throughput vs cross-shard ratio (fence on every "
        "participant, all forced before ack)",
        ["ratio", "acked", "cross", "acked/s"],
    )
    for ratio, row in results.items():
        table.add_row(
            ratio, row["acked"], row["cross_acked"],
            f"{row['acked_per_s']:.0f}",
        )
    table.print()

    for ratio, row in results.items():
        assert row["acked"] == CLIENTS * OPS, (ratio, row)
    # 25% cross-shard must actually exercise the fence protocol.
    assert results["0.25"]["cross_acked"] > 0

    _record(
        "cross_shard_ratio",
        {
            ratio: {
                "acked_per_s": row["acked_per_s"],
                "cross_acked": row["cross_acked"],
            }
            for ratio, row in results.items()
        },
    )


# ----------------------------------------------------------------------
# lane 3: the honest 1-core reference (no modeled latency)
# ----------------------------------------------------------------------
def _inmemory_reference() -> Dict:
    out: Dict[str, Dict] = {}
    for shards in (1, 4):
        out[str(shards)] = _run_load(shards, modeled_latency=False)
    return out


@pytest.mark.benchmark(group="e13")
def test_e13_inmemory_reference(benchmark):
    results = once(benchmark, _inmemory_reference)

    table = Table(
        "E13: in-memory WAL reference (GIL-bound on a 1-core host; "
        "recorded for contrast, no scaling asserted)",
        ["shards", "acked", "acked/s"],
    )
    for shards, row in results.items():
        table.add_row(shards, row["acked"], f"{row['acked_per_s']:.0f}")
    table.print()

    for row in results.values():
        assert row["acked"] == CLIENTS * OPS

    _record(
        "inmemory_reference",
        {
            shards: {"acked_per_s": row["acked_per_s"]}
            for shards, row in results.items()
        },
    )
