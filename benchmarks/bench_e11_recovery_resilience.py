"""E11 — recovery resilience: convergence cost when recovery itself
is under fire.

E9 proved recovery survives a faulty device when the faults hit the
*forward* run.  E11 turns the adversary on recovery: every numbered
recovery-phase I/O point is crashed/torn/flipped (including nested
schedules that kill several successive recovery attempts), and a fuzz
ladder raises the mid-recovery crash rate to measure what resilience
*costs* — supervised attempts per convergence, restarts, and wall
time — as the device gets nastier:

* **recovery-point sweep** — the torture-v2 grid (point × kind plus
  nested-crash schedules); expected 100% convergence to HEALTHY with
  the restart machinery visibly working (nonzero restarts);
* **fuzz ladder** — seeded two-phase schedules at increasing
  mid-recovery crash rates; expected 100% convergence at every rung
  with mean attempts growing monotonically (within noise) in the
  crash rate — resilience scales smoothly, it does not cliff;
* **degraded-mode lane** — the worst case: unrecoverable loss with no
  backup and media restore disabled must land in DEGRADED read-only
  mode in one attempt, never loop.

Results are appended to ``BENCH_e11.json`` at the repo root so future
PRs can track the trajectory.  ``E11_RUNS`` caps the fuzz runs per
ladder rung (CI smoke runs with ``E11_RUNS=20``); the assertions all
still run at any cap.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.common.errors import DegradedModeError
from repro.kernel.supervisor import RecoverySupervisor, SupervisorConfig
from repro.kernel.system import (
    RecoverableSystem,
    SystemConfig,
    SystemHealth,
)
from repro.kernel.torture import TortureConfig, TortureHarness
from repro.analysis import Table, fault_summary
from repro.storage.faults import (
    RECOVERY_PHASE,
    FaultModel,
    FuzzRates,
    FaultyStore,
)
from repro.storage.stable_store import StoredVersion
from repro.wal.faulty_log import FaultyLog
from repro.workloads import register_workload_functions
from tests.conftest import physical
from benchmarks.conftest import once

#: Fuzz schedules per ladder rung (CI smoke: E11_RUNS=20).
RUNS = int(os.environ.get("E11_RUNS", "150"))
#: Workload size for every campaign.
OPS = int(os.environ.get("E11_OPS", "30"))

#: The ladder: mid-recovery crash probability per I/O point.  Damage
#: rates stay fixed so attempts isolate the cost of *restarting*.
CRASH_RATES = (0.0, 0.01, 0.05, 0.15)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e11.json"


def _record(section: str, payload) -> None:
    """Merge one section into the BENCH_e11.json trajectory file."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data["runs_per_rung"] = RUNS
    data["operations"] = OPS
    data[section] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _harness() -> TortureHarness:
    return TortureHarness(TortureConfig(operations=OPS))


# ----------------------------------------------------------------------
# lane 1: the sweep
# ----------------------------------------------------------------------
def _sweep_campaign() -> Dict:
    harness = _harness()
    t0 = time.perf_counter()
    report = harness.sweep_recovery()
    elapsed = time.perf_counter() - t0
    return {
        "points": report.points,
        "runs": len(report.outcomes),
        "failed": len(report.failures()),
        "max_attempts": max(o.attempts for o in report.outcomes),
        "restarts": report.totals.get("recovery_restarts", 0),
        "attempts": report.totals.get("recovery_attempts", 0),
        "wall_s": elapsed,
        "totals": report.totals,
        "_report": report,
    }


@pytest.mark.benchmark(group="e11")
def test_e11_recovery_sweep(benchmark):
    result = once(benchmark, _sweep_campaign)
    report = result.pop("_report")

    table = Table(
        "E11: recovery-phase fault sweep (converge under fire)",
        ["metric", "value"],
    )
    for key in (
        "points", "runs", "failed", "max_attempts", "restarts", "wall_s",
    ):
        value = result[key]
        table.add_row(
            key, f"{value:.3f}" if isinstance(value, float) else value
        )
    table.print()
    fault_summary(result["totals"], title="E11: sweep fault ledger").print()

    assert report.ok, "; ".join(
        f"{o.description}: {o.error}" for o in report.failures()
    )
    # The restart machinery must be doing real work: the nested-crash
    # schedules alone force ≥3 restarts each.
    assert result["restarts"] >= 3
    assert result["max_attempts"] >= 4

    result["totals"] = dict(result["totals"])
    _record("sweep", result)


# ----------------------------------------------------------------------
# lane 2: the fuzz ladder
# ----------------------------------------------------------------------
def _ladder_campaign() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    for rate in CRASH_RATES:
        harness = _harness()
        rates = FuzzRates(torn=0.005, corrupt=0.005, crash=rate)
        t0 = time.perf_counter()
        report = harness.fuzz_recovery(RUNS, seed=0, rates=rates)
        elapsed = time.perf_counter() - t0
        attempts = [o.attempts for o in report.outcomes]
        out[f"{rate:g}"] = {
            "runs": len(report.outcomes),
            "failed": len(report.failures()),
            "mean_attempts": sum(attempts) / max(1, len(attempts)),
            "max_attempts": max(attempts),
            "restarts": report.totals.get("recovery_restarts", 0),
            "faults": report.totals.get("faults_injected", 0),
            "wall_s": elapsed,
            "_report": report,
        }
    return out


@pytest.mark.benchmark(group="e11")
def test_e11_crash_rate_ladder(benchmark):
    results = once(benchmark, _ladder_campaign)

    table = Table(
        f"E11: mid-recovery crash-rate ladder ({RUNS} runs/rung)",
        ["crash rate", "runs", "failed", "mean att", "max att",
         "restarts", "wall s"],
    )
    for rate, row in results.items():
        table.add_row(
            rate, row["runs"], row["failed"],
            f"{row['mean_attempts']:.2f}", row["max_attempts"],
            row["restarts"], f"{row['wall_s']:.3f}",
        )
    table.print()

    for rate, row in results.items():
        report = row.pop("_report")
        assert report.ok, f"crash rate {rate}: " + "; ".join(
            f"{o.description}: {o.error}" for o in report.failures()
        )
    # Resilience costs attempts, smoothly: the top rung restarts more
    # than the bottom one, and nothing ever fails to converge.
    rungs = list(results.values())
    assert rungs[-1]["restarts"] > rungs[0]["restarts"]
    assert rungs[-1]["mean_attempts"] >= rungs[0]["mean_attempts"]

    _record("crash_rate_ladder", results)


# ----------------------------------------------------------------------
# lane 3: recovery telemetry — spans + latency digests from a
# supervised campaign, exported as the JSONL artifact CI uploads
# ----------------------------------------------------------------------

#: Where the telemetry artifact lands (repo root, committed as the
#: CI-grown baseline; CI smoke overrides via E11_METRICS_OUT).
METRICS_PATH = os.environ.get(
    "E11_METRICS_OUT",
    str(Path(__file__).resolve().parent.parent / "BENCH_e11_metrics.jsonl"),
)
#: Supervised fuzz runs for the telemetry lane (kept small: every run
#: is a full workload + supervised recovery).
TELEMETRY_RUNS = max(2, min(10, RUNS // 5))


def _telemetry_campaign() -> Dict:
    from repro.obs import MetricsRegistry, dump_jsonl

    registry = MetricsRegistry()
    harness = TortureHarness(
        TortureConfig(operations=OPS), metrics=registry
    )
    rates = FuzzRates(torn=0.005, corrupt=0.005, crash=0.05)
    t0 = time.perf_counter()
    report = harness.fuzz_recovery(TELEMETRY_RUNS, seed=0, rates=rates)
    elapsed = time.perf_counter() - t0
    dump_jsonl(registry, METRICS_PATH)
    attempts = sum(o.attempts for o in report.outcomes)
    snap = registry.snapshot()
    return {
        "runs": len(report.outcomes),
        "failed": len(report.failures()),
        "attempts": attempts,
        "seconds_per_attempt": (
            sum(
                event["seconds"]
                for event in registry.span_events("recovery.attempt")
            )
            / max(1, attempts)
        ),
        "wall_s": elapsed,
        "metrics_path": METRICS_PATH,
        "_report": report,
        "_registry": registry,
        "_snapshot": snap,
    }


@pytest.mark.benchmark(group="e11")
def test_e11_recovery_telemetry(benchmark):
    result = once(benchmark, _telemetry_campaign)
    report = result.pop("_report")
    registry = result.pop("_registry")
    snap = result.pop("_snapshot")

    table = Table(
        f"E11: supervised-recovery telemetry ({TELEMETRY_RUNS} fuzz runs)",
        ["metric", "value"],
    )
    for key in ("runs", "failed", "attempts", "seconds_per_attempt",
                "wall_s"):
        value = result[key]
        table.add_row(
            key, f"{value:.5f}" if isinstance(value, float) else value
        )
    table.print()

    assert report.ok
    # One span per supervised recovery attempt, each tagged with the
    # phase and the supervisor's verdict.
    spans = registry.span_events("recovery.attempt")
    assert len(spans) == result["attempts"] > 0
    for event in spans:
        assert event["tags"]["phase"] == "recovery"
        assert "outcome" in event["tags"]
    # The latency digests CI's artifact carries: p50/p99 for the WAL
    # force and the cache flush paths.
    for name in ("wal.force", "cache.flush"):
        hist = snap["histograms"][name]
        assert hist["count"] > 0
        assert hist["p99"] >= hist["p50"] >= 0.0
    # The artifact on disk round-trips to the same counters.
    from repro.obs import load_jsonl

    loaded = load_jsonl(METRICS_PATH)
    assert loaded["snapshot"]["counters"] == snap["counters"]
    assert len(loaded["spans"]) == len(registry.span_events())

    _record("recovery_telemetry", {
        key: value for key, value in result.items()
    })


# ----------------------------------------------------------------------
# lane 4: degraded mode, the worst case
# ----------------------------------------------------------------------
def _degraded_campaign() -> Dict:
    model = FaultModel(armed=False)
    system = RecoverableSystem(
        SystemConfig(), store=FaultyStore(model), log=FaultyLog(model)
    )
    register_workload_functions(system.registry)
    for index in range(OPS):
        system.execute(physical(f"obj:{index % 4}", b"v%d" % index))
    system.flush_all()
    system.checkpoint(truncate=True)
    victim = "obj:1"
    good = system.store._versions[victim]
    system.store._versions[victim] = StoredVersion(b"\x00ROT\x00", good.vsi)
    system.crash()
    model.enter_phase(RECOVERY_PHASE)
    t0 = time.perf_counter()
    report = RecoverySupervisor(
        system,
        config=SupervisorConfig(allow_media_restore=False),
    ).run()
    elapsed = time.perf_counter() - t0
    survivors_readable = all(
        system.read(obj) is not None
        for obj in ("obj:0", "obj:2", "obj:3")
    )
    writes_refused = False
    try:
        system.execute(physical("obj:0", b"nope"))
    except DegradedModeError:
        writes_refused = True
    return {
        "attempts": report.attempts_used,
        "health": report.final_health.value,
        "lost": sorted(map(str, report.objects_lost)),
        "survivors_readable": survivors_readable,
        "writes_refused": writes_refused,
        "wall_s": elapsed,
    }


@pytest.mark.benchmark(group="e11")
def test_e11_degraded_mode(benchmark):
    result = once(benchmark, _degraded_campaign)

    table = Table(
        "E11: unrecoverable loss lands read-only, fast",
        ["metric", "value"],
    )
    for key, value in result.items():
        table.add_row(
            key, f"{value:.4f}" if isinstance(value, float) else str(value)
        )
    table.print()

    assert result["health"] == SystemHealth.DEGRADED.value
    assert result["lost"] == ["obj:1"]
    assert result["survivors_readable"]
    assert result["writes_refused"]
    # The worst case must not burn the attempt budget: one converged
    # attempt classifies the loss and stops.
    assert result["attempts"] == 1

    _record("degraded", result)
