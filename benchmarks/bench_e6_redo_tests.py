"""E6 — Section 5: recovery work under the three recovery schemes.

The paper's comparison is between recovery *systems*, not just tests:
"Recovery optimization using rSI's and logging installations is
extremely important when we extend recovery to non-traditional objects
such as application state and files."  We therefore compare:

* ``vsi, no install-logging`` — the traditional scheme: no
  installation records on the log, so the analysis pass cannot advance
  rSIs for objects installed without flushing; the redo scan starts at
  the first dirty write and every operation is re-checked (and
  re-executed unless a flushed version proves it installed);
* ``vsi + install-logging`` — installation records shorten the scan,
  but the test itself still cannot recognise unexposed writesets;
* ``rsi + install-logging`` — the paper's full scheme.

Workloads: **transient files** (most operations touch temp files
deleted before the crash — sorts of deleted files are expensive
re-executions the paper wants to avoid) and **kv pages** (classic
physiological traffic where the vSI test is already effective).
``redo-all`` appears for the kv workload as a counts-only upper bound;
unconditional redo is only safe for physical-write-only logs, so it is
not verified and not run on the logical workload.

Expected shape: on transient files the paper's scheme re-executes
nothing while the traditional scheme re-runs every sort (including
those of deleted files); on kv pages the schemes converge.
"""

from __future__ import annotations

from typing import Dict, Optional

import pytest

from repro import (
    CacheConfig,
    GeneralizedRedoTest,
    RecoverableSystem,
    RedoAll,
    SystemConfig,
    VsiRedoTest,
    verify_recovered,
)
from repro.analysis import Table
from repro.workloads import kv_update_workload, transient_files_workload
from benchmarks.conftest import once

SCHEMES = {
    "vsi, no install-logging": lambda: SystemConfig(
        cache=CacheConfig(log_installations=False),
        redo_test=VsiRedoTest(),
    ),
    "vsi + install-logging": lambda: SystemConfig(
        redo_test=VsiRedoTest()
    ),
    "rsi + install-logging": lambda: SystemConfig(
        redo_test=GeneralizedRedoTest()
    ),
}


def _run(system: RecoverableSystem, drive) -> Dict[str, int]:
    drive(system)
    system.flush_all()
    system.log.force()  # installation records (where enabled) durable
    system.crash()
    before = system.stats.snapshot()
    report = system.recover()
    reads = system.stats.diff(before)["object_reads"]
    verify_recovered(system)
    return {
        "scanned": report.records_scanned,
        "redone": report.ops_redone,
        "skipped": report.skipped(),
        "reads": reads,
    }


def _drive_transient(system: RecoverableSystem) -> None:
    transient_files_workload(system, files=24, object_size=4096, keep_every=4)


def _drive_kv(system: RecoverableSystem) -> None:
    kv_update_workload(system, updates=150, keys=30, pages=8, value_size=64)
    # Partial installation: only some pages flushed before the crash.
    system.log.force()
    for _ in range(4):
        system.purge()


def _kv_redo_all() -> Dict[str, int]:
    system = RecoverableSystem(SystemConfig(redo_test=RedoAll()))
    _drive_kv(system)
    system.crash()
    before = system.stats.snapshot()
    report = system.recover()  # counts only; not verified (unsafe)
    return {
        "scanned": report.records_scanned,
        "redone": report.ops_redone,
        "skipped": report.skipped(),
        "reads": system.stats.diff(before)["object_reads"],
    }


def _run_all():
    results: Dict[str, Dict[str, Optional[Dict[str, int]]]] = {
        "transient-files": {},
        "kv-pages": {},
    }
    for name, make_config in SCHEMES.items():
        results["transient-files"][name] = _run(
            RecoverableSystem(make_config()), _drive_transient
        )
        results["kv-pages"][name] = _run(
            RecoverableSystem(make_config()), _drive_kv
        )
    results["kv-pages"]["redo-all (upper bound)"] = _kv_redo_all()
    results["transient-files"]["redo-all (upper bound)"] = None
    return results


@pytest.mark.benchmark(group="e6")
def test_e6_recovery_schemes(benchmark):
    results = once(benchmark, _run_all)

    table = Table(
        "E6 (Section 5): recovery work by scheme",
        ["workload", "scheme", "records scanned", "ops redone",
         "ops bypassed", "stable reads"],
    )
    for workload, per_scheme in results.items():
        for name, row in per_scheme.items():
            if row is None:
                table.add_row(workload, name, "n/a (unsafe)", "-", "-", "-")
            else:
                table.add_row(
                    workload, name, row["scanned"], row["redone"],
                    row["skipped"], row["reads"],
                )
    table.print()

    transient = results["transient-files"]
    baseline = transient["vsi, no install-logging"]
    paper = transient["rsi + install-logging"]
    # The paper's scheme re-executes nothing: every operation was
    # installed (many without ever flushing their deleted objects).
    assert paper["redone"] == 0
    # The traditional scheme re-executes the deleted files' operations
    # (their objects are gone, so no vSI can prove installation).
    assert baseline["redone"] > 0
    # And it scans the whole tail while the paper's scheme scans ~none.
    assert paper["scanned"] < baseline["scanned"]

    kv = results["kv-pages"]
    # On physiological workloads the SI tests agree with each other.
    assert (
        kv["rsi + install-logging"]["redone"]
        <= kv["vsi + install-logging"]["redone"]
    )
    upper = kv["redo-all (upper bound)"]
    assert upper["redone"] >= kv["vsi + install-logging"]["redone"]


def _checkpoint_sweep() -> Dict[str, Dict[str, int]]:
    """Checkpoint frequency vs. restart cost and log retention.

    Checkpoints alone do not shorten the *redo* scan — rSIs only
    advance when operations are installed — so the workload interleaves
    page cleaning (purges).  What checkpointing buys is (a) a bounded
    analysis pass (it starts at the latest checkpoint) and (b) log
    truncation; both shrink with the interval, at the cost of
    checkpoint records during normal execution.
    """
    import random as _random

    from repro.domains import KVPageStore
    from repro.wal.records import CheckpointRecord

    out: Dict[str, Dict[str, int]] = {}
    for label, every in (
        ("none", None),
        ("16 KiB", 16 * 1024),
        ("4 KiB", 4 * 1024),
        ("1 KiB", 1024),
    ):
        system = RecoverableSystem(
            SystemConfig(checkpoint_every_bytes=every)
        )
        store = KVPageStore(system, pages=8)
        rng = _random.Random(7)
        for index in range(200):
            store.put(rng.randrange(40), f"v{index}")
            if index % 10 == 9:
                system.purge()  # ongoing page cleaning
        system.log.force()
        checkpoints = sum(
            1
            for record in system.log.stable_records()
            if isinstance(record, CheckpointRecord)
        )
        retained = len(list(system.log.stable_records()))
        system.crash()
        report = system.recover()
        verify_recovered(system)
        out[label] = {
            "checkpoints": checkpoints,
            "retained": retained,
            "analysis": report.analysis_records,
            "scanned": report.records_scanned,
        }
    return out


@pytest.mark.benchmark(group="e6")
def test_e6_checkpoint_interval_sweep(benchmark):
    results = once(benchmark, _checkpoint_sweep)
    table = Table(
        "E6b: checkpoint interval (200 kv updates with page cleaning)",
        ["checkpoint every", "checkpoints", "log records retained",
         "analysis records", "redo records scanned"],
    )
    for label, row in results.items():
        table.add_row(
            label, row["checkpoints"], row["retained"],
            row["analysis"], row["scanned"],
        )
    table.print()

    # More frequent checkpoints => shorter retained log + analysis.
    assert results["1 KiB"]["retained"] < results["none"]["retained"]
    assert results["1 KiB"]["analysis"] <= results["none"]["analysis"]
    assert results["1 KiB"]["checkpoints"] > results["16 KiB"]["checkpoints"]


def _timed_recovery_factory(scheme: str):
    """Build a crashed system ready to recover (pedantic setup hook)."""

    def setup():
        system = RecoverableSystem(SCHEMES[scheme]())
        _drive_transient(system)
        system.flush_all()
        system.log.force()
        system.crash()
        return (system,), {}

    return setup


def _recover(system: RecoverableSystem) -> None:
    system.recover()


@pytest.mark.benchmark(group="e6-timing")
def test_e6_recovery_time_traditional(benchmark):
    """Wall-clock recovery under the traditional (vSI, no installation
    logging) scheme — re-executes the transient-file operations."""
    benchmark.pedantic(
        _recover,
        setup=_timed_recovery_factory("vsi, no install-logging"),
        rounds=5,
    )


@pytest.mark.benchmark(group="e6-timing")
def test_e6_recovery_time_paper(benchmark):
    """Wall-clock recovery under the paper's scheme — bypasses all of
    it.  Expect this to be markedly faster than the traditional row."""
    benchmark.pedantic(
        _recover,
        setup=_timed_recovery_factory("rsi + install-logging"),
        rounds=5,
    )
