"""E3 — Figures 5 and 7: flush-set evolution, W versus rW.

Reconstructs the paper's two worked write-graph examples and reports,
step by step, the atomic flush sets each graph prescribes.  The claims:

* Figure 5: after operation B, rW flushes Y alone (X became
  unexposed), while W still requires the atomic pair {X, Y}.
* Figure 7: the multi-object set {X, Y} created by one operation
  shrinks to {Y} in rW once C blind-writes X; W's node only ever grows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.analysis import Table
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.core.operation import Operation, OpKind
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.core.write_graph import BatchWriteGraph
from benchmarks.conftest import once


def _op(name, reads, writes):
    return Operation(
        name, OpKind.LOGICAL, reads=set(reads), writes=set(writes), fn="f"
    )


def _trace(ops) -> List[Tuple[str, List[tuple], List[tuple]]]:
    """After each operation, the (vars, notx) sets of every node in rW
    and the vars sets of every node in W."""
    steps = []
    rw = RefinedWriteGraph()
    seen = []
    for index, op in enumerate(ops):
        op.lsi = index + 1
        seen.append(op)
        rw.add_operation(op)
        history = History()
        for item in seen:
            history.append(item)
        w = BatchWriteGraph(InstallationGraph(list(history)))
        rw_nodes = sorted(
            (tuple(sorted(n.vars)), tuple(sorted(n.notx))) for n in rw.nodes
        )
        w_nodes = sorted(tuple(sorted(n.vars)) for n in w.nodes)
        steps.append((op.name, rw_nodes, w_nodes))
    return steps


def _figure5_ops():
    return [
        _op("A: write {X,Y}", ["X", "Y"], ["X", "Y"]),
        _op("B: X <- g(Y)", ["Y"], ["X"]),
    ]


def _figure7_ops():
    return [
        _op("A: write {X,Y}", [], ["X", "Y"]),
        _op("B: read X, write Z", ["X"], ["Z"]),
        _op("C: blind-write X", [], ["X"]),
    ]


def _report(title: str, steps) -> Table:
    table = Table(title, ["after op", "rW nodes (vars|notx)", "W nodes (vars)"])
    for name, rw_nodes, w_nodes in steps:
        rw_text = "  ".join(
            "{" + ",".join(vars_) + ("|" + ",".join(notx) if notx else "") + "}"
            for vars_, notx in rw_nodes
        )
        w_text = "  ".join("{" + ",".join(vars_) + "}" for vars_ in w_nodes)
        table.add_row(name, rw_text, w_text)
    return table


@pytest.mark.benchmark(group="e3")
def test_e3_figure5(benchmark):
    steps = once(benchmark, _trace, _figure5_ops())
    _report("E3 (Figure 5): X,Y example", steps).print()

    # After B: rW has a node flushing only Y (X unexposed) and a node
    # flushing X; W still demands the atomic pair.
    _name, rw_nodes, w_nodes = steps[-1]
    assert (("Y",), ("X",)) in rw_nodes  # vars={Y}, notx={X}
    assert (("X",), ()) in rw_nodes
    assert ("X", "Y") in w_nodes  # W: atomic {X, Y}

    max_rw = max(len(vars_) for vars_, _notx in rw_nodes)
    max_w = max(len(vars_) for vars_ in w_nodes)
    assert max_rw == 1 and max_w == 2


@pytest.mark.benchmark(group="e3")
def test_e3_figure7(benchmark):
    steps = once(benchmark, _trace, _figure7_ops())
    _report("E3 (Figure 7): flush set shrinks after blind write", steps).print()

    # After A: both graphs hold {X, Y} atomically.
    _a, rw_after_a, w_after_a = steps[0]
    assert (("X", "Y"), ()) in rw_after_a
    assert ("X", "Y") in w_after_a
    # After C: rW's A-node flushes only Y; W's node is still {X, Y}.
    _c, rw_after_c, w_after_c = steps[-1]
    assert (("Y",), ("X",)) in rw_after_c
    assert ("X", "Y") in w_after_c
