"""E1 — Figure 1: logging cost of logical vs physiological vs physical
operations.

The paper's Figure 1 contrasts logging the A/B operation pair
(A: Y <- f(X,Y); B: X <- g(Y)) logically — identifiers only — against
physiologically, where each record must carry a data value (``log(X)``
for A, ``log(Y)`` for B, or equivalently the results).  We sweep the
object size from 64 B to 1 MiB and report the log bytes per scheme.

Expected shape: logical cost is flat (identifier-sized) while the
value-carrying schemes grow linearly with object size; at 1 MiB the
ratio is four to five orders of magnitude.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis import Table, format_bytes, ratio
from repro.core.operation import Operation, OpKind
from benchmarks.conftest import once, payload

SIZES = [64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024]


def _pair_records(size: int) -> Dict[str, int]:
    """Log bytes for the A/B pair under each logging scheme."""
    value_x = payload("X", size)
    value_y = payload("Y", size)

    # Logical (Figure 1a): identifiers only.
    logical_a = Operation(
        "A", OpKind.LOGICAL, reads={"X", "Y"}, writes={"Y"}, fn="f",
        params=("X", "Y"),
    )
    logical_b = Operation(
        "B", OpKind.LOGICAL, reads={"Y"}, writes={"X"}, fn="g",
        params=("Y", "X"),
    )

    # Physiological (Figure 1b): single-object transforms whose foreign
    # input is logged as a value parameter (log(X), log(Y)).
    physio_a = Operation(
        "A_p", OpKind.PHYSIOLOGICAL, reads={"Y"}, writes={"Y"}, fn="f",
        params=("Y", value_x),
    )
    physio_b = Operation(
        "B_p", OpKind.PHYSIOLOGICAL, reads={"X"}, writes={"X"}, fn="g",
        params=("X", value_y),
    )

    # Physical: the written values themselves are logged.
    result_y = payload("fXY", size)
    result_x = payload("gY", size)
    physical_a = Operation(
        "A_P", OpKind.PHYSICAL, reads=set(), writes={"Y"},
        payload={"Y": result_y},
    )
    physical_b = Operation(
        "B_P", OpKind.PHYSICAL, reads=set(), writes={"X"},
        payload={"X": result_x},
    )

    return {
        "logical": logical_a.record_size() + logical_b.record_size(),
        "physiological": physio_a.record_size() + physio_b.record_size(),
        "physical": physical_a.record_size() + physical_b.record_size(),
    }


def _run_sweep() -> Dict[int, Dict[str, int]]:
    return {size: _pair_records(size) for size in SIZES}


@pytest.mark.benchmark(group="e1")
def test_e1_figure1_logging_cost(benchmark):
    results = once(benchmark, _run_sweep)

    table = Table(
        "E1 (Figure 1): log bytes for the A/B operation pair",
        ["object size", "logical", "physiological", "physical",
         "physio/logical", "physical/logical"],
    )
    for size, row in results.items():
        table.add_row(
            format_bytes(size),
            format_bytes(row["logical"]),
            format_bytes(row["physiological"]),
            format_bytes(row["physical"]),
            ratio(row["physiological"], row["logical"]),
            ratio(row["physical"], row["logical"]),
        )
    table.print()

    # Qualitative claims: logical is flat; the others grow linearly.
    logical_costs = [results[s]["logical"] for s in SIZES]
    assert len(set(logical_costs)) == 1, "logical cost must not grow"
    for size in SIZES:
        assert results[size]["physiological"] >= size
        assert results[size]["physical"] >= size
    big = SIZES[-1]
    assert results[big]["physiological"] / results[big]["logical"] > 1000
