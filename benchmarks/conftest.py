"""Shared helpers for the benchmark harness.

Every bench prints its experiment table (visible with ``-s``) and
asserts the paper's *qualitative* claim (who wins, roughly by how much)
so that regressions in the reproduction are caught even when nobody
reads the tables.  pytest-benchmark provides wall-clock timing on the
code paths that matter; the headline numbers are the counters.
"""

from __future__ import annotations

import hashlib

import pytest


def payload(tag: str, size: int) -> bytes:
    """Deterministic pseudo-random bytes of the given size."""
    seed = hashlib.sha256(tag.encode()).digest()
    return (seed * (size // len(seed) + 1))[:size]


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Counter-based experiments are deterministic; a single round gives
    the timing signal without re-running side-effectful workloads.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
