#!/usr/bin/env python3
"""Watching the refined write graph and identity writes at work.

Reconstructs Section 4's cycle — (a) Y=f(X,Y); (b) X=g(Y); (c) Y=h(Y) —
prints the rW node structure as it evolves, and then shows the cache
manager dissolving the resulting multi-object atomic flush set with
identity writes so that every device write is single-object.

Run:  python examples/identity_writes_demo.py
"""

from repro import Operation, OpKind, RecoverableSystem, verify_recovered


def show_graph(system: RecoverableSystem, label: str) -> None:
    graph = system.cache.engine
    print(f"\nrW after {label}:")
    for node in graph.nodes:
        ops = ",".join(sorted(op.name for op in node.ops))
        preds = sorted(p.node_id for p in graph.predecessors(node))
        print(
            f"  node {node.node_id}: ops=[{ops}] "
            f"vars={sorted(node.vars)} notx={sorted(node.notx)} "
            f"preds={preds}"
        )


def main() -> None:
    system = RecoverableSystem()  # identity-write strategy by default
    system.registry.register(
        "f", lambda reads, x, y: {y: reads[x] + reads[y]}
    )
    system.registry.register(
        "g", lambda reads, y, x: {x: bytes(reversed(reads[y]))}
    )
    system.registry.register(
        "h", lambda reads, y: {y: reads[y] + b"!"}
    )

    system.execute(Operation(
        "init X", OpKind.PHYSICAL, reads=set(), writes={"X"},
        payload={"X": b"xx"},
    ))
    system.execute(Operation(
        "init Y", OpKind.PHYSICAL, reads=set(), writes={"Y"},
        payload={"Y": b"yy"},
    ))

    system.execute(Operation(
        "a", OpKind.LOGICAL, reads={"X", "Y"}, writes={"Y"},
        fn="f", params=("X", "Y"),
    ))
    show_graph(system, "a: Y <- f(X,Y)")

    system.execute(Operation(
        "b", OpKind.LOGICAL, reads={"Y"}, writes={"X"},
        fn="g", params=("Y", "X"),
    ))
    show_graph(system, "b: X <- g(Y)   (Y-before-X flush order)")

    system.execute(Operation(
        "c", OpKind.LOGICAL, reads={"Y"}, writes={"Y"},
        fn="h", params=("Y",),
    ))
    show_graph(
        system, "c: Y <- h(Y)   (cycle! collapsed to one {X,Y} node)"
    )

    print("\ndraining the cache with identity writes...")
    system.flush_all()
    print(f"  identity writes injected: {system.stats.identity_writes}")
    print(f"  multi-object atomic flushes: {system.stats.atomic_flushes}")
    print(f"  quiesce events: {system.stats.quiesce_events}")
    assert system.stats.atomic_flushes == 0

    system.crash()
    system.recover()
    verify_recovered(system)
    print("\ncrash + recovery verified against the oracle")
    print(f"final X = {system.read('X')!r}")
    print(f"final Y = {system.read('Y')!r}")
    print("OK")


if __name__ == "__main__":
    main()
