#!/usr/bin/env python3
"""Secondary indexes maintained by logical operations.

A database example beyond the paper's B-tree split: an index entry is
*derivable* from the base record, so its maintenance operations can
read the record from the recoverable base page instead of carrying the
value in the log record.  The demo loads an update-heavy workload under
both schemes, compares the log, then crashes mid-workload and shows the
index recovered exactly in sync with the base table.

Run:  python examples/secondary_index.py
"""

import hashlib

from repro import RecoverableSystem, verify_recovered
from repro.analysis import Table, format_bytes
from repro.domains import IndexedKVStore, IndexLoggingMode

ROUNDS = 60
KEYS = 20


def _record(key: str, version: int) -> bytes:
    seed = hashlib.sha256(f"{key}:{version}".encode()).digest()
    return seed * 64  # 2 KiB records


def drive(store: IndexedKVStore) -> None:
    for round_index in range(ROUNDS):
        key = f"user{round_index % KEYS}"
        store.put(key, _record(key, round_index))


def compare_logging() -> None:
    table = Table(
        f"Log traffic: {ROUNDS} puts of 2 KiB records over {KEYS} keys",
        ["index scheme", "log bytes", "data-value bytes"],
    )
    for mode in IndexLoggingMode:
        system = RecoverableSystem()
        store = IndexedKVStore(system, mode=mode)
        drive(store)
        store.check_index_consistency()
        table.add_row(
            mode.value,
            format_bytes(system.stats.log_bytes),
            format_bytes(system.stats.log_value_bytes),
        )
    table.print()


def crash_and_recover() -> None:
    system = RecoverableSystem()
    store = IndexedKVStore(system)
    drive(store)
    system.log.force()
    for _ in range(4):
        system.purge()
    system.crash()
    report = system.recover()
    verify_recovered(system)

    recovered = IndexedKVStore(system)
    entries = recovered.check_index_consistency()
    sample = recovered.get("user3")
    hits = recovered.find_by_value(sample)
    assert "user3" in hits
    print(f"\ncrash recovery: {report.ops_redone} redone, "
          f"{report.skipped()} bypassed")
    print(f"index verified consistent with the base table "
          f"({entries} indexed entries); lookup-by-value works")


def main() -> None:
    compare_logging()
    crash_and_recover()
    print("OK")


if __name__ == "__main__":
    main()
