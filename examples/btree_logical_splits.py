#!/usr/bin/env python3
"""B-tree page splits with logical logging.

The paper's database example: a page split copies half of a full page
to a new page — "a logical split operation avoids the need to log the
contents of the new B-tree node".  This demo loads a tree under both
split-logging schemes, compares the log traffic, then crashes the
logical-split tree mid-load and recovers it.

Run:  python examples/btree_logical_splits.py
"""

import random

from repro import RecoverableSystem, verify_recovered
from repro.analysis import Table, format_bytes
from repro.domains import RecoverableBTree, SplitLoggingMode

INSERTS = 400
VALUE = b"payload-" * 16  # 128 B values


def load(tree: RecoverableBTree, count: int, seed: int = 42) -> None:
    keys = list(range(count))
    random.Random(seed).shuffle(keys)
    for key in keys:
        tree.insert(key, VALUE)


def compare_split_logging() -> None:
    table = Table(
        f"Log traffic loading {INSERTS} keys (capacity-8 pages)",
        ["split scheme", "log bytes", "data-value bytes"],
    )
    for mode in SplitLoggingMode:
        system = RecoverableSystem()
        tree = RecoverableBTree(system, capacity=8, mode=mode)
        load(tree, INSERTS)
        assert tree.check_structure() == INSERTS
        table.add_row(
            mode.value,
            format_bytes(system.stats.log_bytes),
            format_bytes(system.stats.log_value_bytes),
        )
    table.print()


def crash_during_load() -> None:
    system = RecoverableSystem()
    tree = RecoverableBTree(system, capacity=8)
    load(tree, INSERTS)
    # Make the load durable, flush some pages, then crash.
    system.log.force()
    for _ in range(10):
        system.purge()
    system.crash()
    report = system.recover()
    verify_recovered(system)
    print(f"\ncrash recovery: {report.ops_redone} ops redone, "
          f"{report.skipped()} bypassed")

    recovered = RecoverableBTree(system, capacity=8)
    assert recovered.check_structure() == INSERTS
    probe = random.Random(7).sample(range(INSERTS), 20)
    assert all(recovered.lookup(key) == VALUE for key in probe)
    print(f"tree intact after recovery: {INSERTS} keys, "
          f"structure checks pass")

    # Keep inserting after recovery — the allocator re-attached.
    for key in range(INSERTS, INSERTS + 50):
        recovered.insert(key, VALUE)
    assert recovered.check_structure() == INSERTS + 50
    print("50 post-recovery inserts OK")


def main() -> None:
    compare_split_logging()
    crash_during_load()
    print("OK")


if __name__ == "__main__":
    main()
