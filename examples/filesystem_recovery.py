#!/usr/bin/env python3
"""A recoverable file system with logical copy/sort and fuzzy backups.

Demonstrates the paper's file-system examples: whole files are
recoverable objects, and derivations (copy, sort, concat) are logical
operations whose log records name only the source and target files.
Finishes with a media-recovery pass: the stable store is destroyed and
rebuilt from a fuzzy backup plus the retained log suffix.

Run:  python examples/filesystem_recovery.py
"""

from repro import FuzzyBackup, RecoverableSystem, verify_recovered
from repro.analysis import format_bytes
from repro.domains import RecoverableFileSystem


def build_dataset(fs: RecoverableFileSystem) -> None:
    fs.write_file("raw", bytes(range(256)) * 64)  # 16 KiB of input
    fs.copy("raw", "raw.bak")
    fs.sort("raw", "raw.sorted")
    fs.concat(["raw.sorted", "raw.bak"], "combined")
    # Temp files come and go; recovery will never re-create them.
    fs.write_file("scratch", b"intermediate " * 100)
    fs.sort("scratch", "scratch.sorted")
    fs.delete("scratch")
    fs.delete("scratch.sorted")


def main() -> None:
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)

    build_dataset(fs)
    print(f"dataset built: log = {format_bytes(system.stats.log_bytes)}, "
          f"data values logged = "
          f"{format_bytes(system.stats.log_value_bytes)} "
          f"(derived files cost only identifiers)")

    # ----- crash recovery --------------------------------------------
    system.log.force()
    system.purge()  # install a little, not everything
    system.crash()
    report = system.recover()
    verify_recovered(system)
    print(f"crash recovery: {report.ops_redone} redone, "
          f"{report.skipped()} bypassed")
    fs = RecoverableFileSystem(system)
    assert fs.read_file("combined") is not None
    assert not fs.exists("scratch")

    # ----- media recovery --------------------------------------------
    # Take a fuzzy backup: objects are copied one at a time while the
    # system keeps running between copies.
    system.flush_all()
    backup = FuzzyBackup(start_lsi=system.log.stable_end_lsi() + 1)
    names = list(system.store.object_ids())
    half = len(names) // 2
    backup.copy_all(system.store, names[:half])
    fs.append("raw", b"POST-BACKUP-APPEND")  # concurrent with the copy
    system.flush_all()
    backup.copy_all(system.store, names[half:])
    backup.finish()
    print(f"fuzzy backup of {len(backup)} objects taken "
          f"(redo window starts at lSI {backup.start_lsi})")

    expected_raw = fs.read_file("raw")

    # Disk dies: restore the backup image, then replay the log suffix.
    backup.restore_into(system.store)
    system.crash()
    report = system.recover(media_redo_start=backup.start_lsi)
    verify_recovered(system)
    fs = RecoverableFileSystem(system)
    assert fs.read_file("raw") == expected_raw
    print(f"media recovery: {report.ops_redone} operations replayed "
          f"onto the backup image; state verified")
    print("OK")


if __name__ == "__main__":
    main()
