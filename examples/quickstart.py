#!/usr/bin/env python3
"""Quickstart: logical logging, a crash, and redo recovery in 60 lines.

Builds the paper's Figure 1(a) scenario directly on the public API:
two logical operations — A: Y <- f(X, Y) and B: X <- g(Y) — whose log
records carry only identifiers, then crashes the system and recovers.

Run:  python examples/quickstart.py
"""

from repro import Operation, OpKind, RecoverableSystem, verify_recovered


def main() -> None:
    system = RecoverableSystem()

    # Logical operations name deterministic transforms in a registry;
    # replay re-reads inputs from the recoverable state, so no data
    # values ever reach the log.
    system.registry.register(
        "f", lambda reads, x, y: {y: reads[x] + reads[y]}
    )
    system.registry.register(
        "g", lambda reads, y, x: {x: bytes(reversed(reads[y]))}
    )

    # Seed X and Y with external data (physical writes: the one case
    # where values must be logged — there is nowhere to re-read them).
    system.execute(Operation(
        "init X", OpKind.PHYSICAL, reads=set(), writes={"X"},
        payload={"X": b"hello "},
    ))
    system.execute(Operation(
        "init Y", OpKind.PHYSICAL, reads=set(), writes={"Y"},
        payload={"Y": b"world"},
    ))

    # Figure 1(a): A reads X and Y, writes Y; B reads Y, writes X.
    system.execute(Operation(
        "A", OpKind.LOGICAL, reads={"X", "Y"}, writes={"Y"},
        fn="f", params=("X", "Y"),
    ))
    system.execute(Operation(
        "B", OpKind.LOGICAL, reads={"Y"}, writes={"X"},
        fn="g", params=("Y", "X"),
    ))
    print(f"Y = {system.read('Y')!r}")
    print(f"X = {system.read('X')!r}")

    # The refined write graph dictates a safe flush order; install one
    # node (the WAL force happens automatically).
    system.purge()
    print(f"log bytes: {system.stats.log_bytes}, "
          f"of which data values: {system.stats.log_value_bytes}")

    # Make the rest of the log durable, then crash: the cache and the
    # volatile log buffer are gone.
    system.log.force()
    system.crash()

    # Redo recovery: analysis pass + generalized rSI REDO test.
    report = system.recover()
    print(f"recovered: {report.ops_redone} redone, "
          f"{report.skipped()} bypassed")

    verify_recovered(system)  # recovered state == crash-free oracle
    print(f"after recovery: Y = {system.read('Y')!r}, "
          f"X = {system.read('X')!r}")
    print("OK")


if __name__ == "__main__":
    main()
