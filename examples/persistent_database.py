#!/usr/bin/env python3
"""A database directory that survives real process crashes.

Opens an on-disk database, loads data across simulated "sessions"
(including one that dies via ``os._exit`` in a child process with
unforced work in flight), and shows recovery-at-open restoring exactly
the durable prefix every time.

Run:  python examples/persistent_database.py
"""

import os
import subprocess
import sys
import tempfile
import textwrap

from repro.domains import RecoverableFileSystem
from repro.domains.filesystem import register_filesystem_functions
from repro.persist import PersistentSystem

CHILD = textwrap.dedent(
    """
    import os, sys
    sys.path.insert(0, {src!r})
    from repro.persist import PersistentSystem
    from repro.domains import RecoverableFileSystem
    from repro.domains.filesystem import register_filesystem_functions

    system = PersistentSystem.open(
        {db!r}, domains=[register_filesystem_functions]
    )
    fs = RecoverableFileSystem(system)
    fs.write_file("report", b"quarterly numbers " * 64)
    fs.sort("report", "report.sorted")
    system.log.force()                      # durable
    fs.write_file("draft", b"half-typed thought...")  # NOT forced
    os._exit(1)                             # power cord yanked
    """
)


def main() -> None:
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    with tempfile.TemporaryDirectory() as root:
        db = os.path.join(root, "demo-db")

        # Session 1: create the database.
        system = PersistentSystem.open(
            db, domains=[register_filesystem_functions]
        )
        fs = RecoverableFileSystem(system)
        fs.write_file("readme", b"this database survives crashes")
        system.log.force()
        print(f"session 1: created {db!r} and forced the log")
        del system

        # Session 2: a child process works and is killed mid-flight.
        script = os.path.join(root, "child.py")
        with open(script, "w") as handle:
            handle.write(CHILD.format(src=src, db=db))
        result = subprocess.run([sys.executable, script])
        print(f"session 2: child process died with code {result.returncode}")

        # Session 3: reopen — recovery replays the durable suffix.
        system = PersistentSystem.open(
            db, domains=[register_filesystem_functions]
        )
        report = system.last_report
        print(f"session 3: recovery at open — {report.ops_redone} redone, "
              f"{report.skipped()} bypassed")
        fs = RecoverableFileSystem(system)
        assert fs.read_file("readme") == b"this database survives crashes"
        assert fs.read_file("report") is not None
        assert fs.read_file("report.sorted") == bytes(
            sorted(fs.read_file("report"))
        )
        assert fs.read_file("draft") is None  # unforced: never happened
        print("  readme, report, report.sorted recovered; "
              "the unforced draft correctly never happened")

        # Housekeeping: flush + checkpoint keeps the WAL bounded.
        system.flush_all()
        system.checkpoint(truncate=True)
        wal = os.path.getsize(os.path.join(db, "wal.log"))
        print(f"  after flush+checkpoint+truncate: wal.log is {wal} bytes")
    print("OK")


if __name__ == "__main__":
    main()
