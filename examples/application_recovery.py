#!/usr/bin/env python3
"""Application recovery: an ETL pipeline that survives crashes.

The scenario from Section 1 of the paper and from [7]: an application
(a deterministic state machine) reads input files, transforms them, and
writes output files.  All three interactions are logged *logically* —
R(A, X) and W_L(A, X) records carry identifiers only — so crash
recovery re-executes the application instead of reading gigantic log
records.

The demo compares the log traffic of the three schemes the paper
discusses, then crashes mid-pipeline and recovers, showing that the
application resumes exactly where the durable log says it was.

Run:  python examples/application_recovery.py
"""

from repro import RecoverableSystem, verify_recovered
from repro.analysis import Table, format_bytes
from repro.domains import (
    AppLoggingMode,
    ApplicationRuntime,
    RecoverableFileSystem,
)

DOCUMENTS = [
    b"the quick brown fox jumps over the lazy dog " * 200,
    b"sphinx of black quartz, judge my vow " * 250,
    b"pack my box with five dozen liquor jugs " * 220,
]


def compare_logging_schemes() -> None:
    table = Table(
        "Log traffic for the same 3-document pipeline",
        ["scheme", "log bytes", "data-value bytes"],
    )
    for mode in AppLoggingMode:
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        app = ApplicationRuntime(system, "app:etl", "upper", mode)
        for index, document in enumerate(DOCUMENTS):
            fs.write_file(f"doc{index}", document)
            app.run_pipeline(
                fs.object_id(f"doc{index}"), fs.object_id(f"out{index}")
            )
        table.add_row(
            mode.value,
            format_bytes(system.stats.log_bytes),
            format_bytes(system.stats.log_value_bytes),
        )
    table.print()


def crash_mid_pipeline() -> None:
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)
    app = ApplicationRuntime(system, "app:etl", "upper")

    # Two pipelines complete and are made durable.
    for index in range(2):
        fs.write_file(f"doc{index}", DOCUMENTS[index])
        app.run_pipeline(
            fs.object_id(f"doc{index}"), fs.object_id(f"out{index}")
        )
    system.log.force()
    steps_durable = app.step

    # The third pipeline starts but the crash strikes before its
    # records reach the stable log: durably, it never happened.
    fs.write_file("doc2", DOCUMENTS[2])
    app.read(fs.object_id("doc2"))
    app.execute_step()
    lost = system.crash()
    print(f"\ncrash: {len(lost)} operations lost with the volatile log")

    report = system.recover()
    print(f"recovery: {report.ops_redone} operations re-executed, "
          f"{report.skipped()} bypassed")
    verify_recovered(system)

    # The application state object is back to the durable prefix.
    recovered = ApplicationRuntime(system, "app:etl", "upper")
    assert recovered.step == steps_durable
    print(f"application resumed at step {recovered.step} "
          f"(the durable prefix)")

    # ... and simply continues: re-run the third pipeline.
    fs2 = RecoverableFileSystem(system)
    fs2.write_file("doc2", DOCUMENTS[2])
    recovered.run_pipeline(fs2.object_id("doc2"), fs2.object_id("out2"))
    assert fs2.read_file("out2") == DOCUMENTS[2].upper()
    print("third pipeline re-run to completion; outputs verified")


def main() -> None:
    compare_logging_schemes()
    crash_mid_pipeline()
    print("OK")


if __name__ == "__main__":
    main()
